package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/vecmath"
)

// documentJSON is the wire form of a Document. Counts keys are function
// indices; encoding/json renders integer-keyed maps with string keys.
type documentJSON struct {
	ID         string         `json:"id"`
	Label      string         `json:"label,omitempty"`
	DurationNS int64          `json:"duration_ns"`
	Counts     map[int]uint64 `json:"counts"`
}

// WriteDocuments streams documents to w as JSON Lines, the logging
// daemon's on-disk format.
func WriteDocuments(w io.Writer, docs []*Document) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range docs {
		if d == nil {
			return fmt.Errorf("core: nil document in batch")
		}
		if err := enc.Encode(documentJSON{
			ID:         d.ID,
			Label:      d.Label,
			DurationNS: d.Duration.Nanoseconds(),
			Counts:     d.Counts,
		}); err != nil {
			return fmt.Errorf("core: encoding document %s: %w", d.ID, err)
		}
	}
	return bw.Flush()
}

// ReadDocuments parses a JSON Lines stream produced by WriteDocuments.
// Records are decoded with a streaming json.Decoder, so a single huge
// document (a long monitoring run touching everything) is bounded only
// by memory — not by a scanner token cap.
func ReadDocuments(r io.Reader) ([]*Document, error) {
	var docs []*Document
	dec := json.NewDecoder(r)
	for rec := 1; ; rec++ {
		var dj documentJSON
		if err := dec.Decode(&dj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("core: document record %d: %w", rec, err)
		}
		doc := &Document{
			ID:       dj.ID,
			Label:    dj.Label,
			Duration: time.Duration(dj.DurationNS),
			Counts:   dj.Counts,
		}
		if doc.Counts == nil {
			doc.Counts = make(map[int]uint64)
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

// signatureJSON is the wire form of a Signature. Vectors are stored
// sparsely: most tf-idf weights are zero.
type signatureJSON struct {
	DocID   string          `json:"doc_id"`
	Label   string          `json:"label,omitempty"`
	Dim     int             `json:"dim"`
	Weights map[int]float64 `json:"weights"`
}

// WriteSignatures streams signatures to w as JSON Lines. The weights map
// is the sparse support verbatim — no dense materialization.
func WriteSignatures(w io.Writer, sigs []Signature) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range sigs {
		if s.W == nil {
			return fmt.Errorf("core: signature %s has no weight vector", s.DocID)
		}
		weights := make(map[int]float64, s.W.NNZ())
		s.W.ForEach(func(i int, x float64) { weights[i] = x })
		if err := enc.Encode(signatureJSON{
			DocID: s.DocID, Label: s.Label, Dim: s.Dim(), Weights: weights,
		}); err != nil {
			return fmt.Errorf("core: encoding signature %s: %w", s.DocID, err)
		}
	}
	return bw.Flush()
}

// ReadSignatures parses a JSON Lines stream produced by WriteSignatures.
// Like ReadDocuments it streams through json.Decoder, so record size is
// bounded only by memory.
func ReadSignatures(r io.Reader) ([]Signature, error) {
	var sigs []Signature
	dec := json.NewDecoder(r)
	for rec := 1; ; rec++ {
		var sj signatureJSON
		if err := dec.Decode(&sj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("core: signature record %d: %w", rec, err)
		}
		if sj.Dim < 1 {
			return nil, fmt.Errorf("core: signature record %d: invalid dimension %d", rec, sj.Dim)
		}
		w, err := sparseFromWeights(sj.Dim, sj.Weights)
		if err != nil {
			return nil, fmt.Errorf("core: signature record %d: %w", rec, err)
		}
		sigs = append(sigs, Signature{DocID: sj.DocID, Label: sj.Label, W: w})
	}
	return sigs, nil
}

// sparseFromWeights builds the canonical sparse form from a weights map,
// validating index range and dropping explicit zeros.
func sparseFromWeights(dim int, weights map[int]float64) (*vecmath.Sparse, error) {
	return vecmath.MapToSparse(vecmath.SparseVector(weights), dim)
}

// Snapshot format: the versioned binary on-disk form of a signature DB,
// so an operator's labeled database survives restarts without re-parsing
// JSON. Layout (all integers little-endian):
//
//	magic   "FMDB"                        (4 bytes)
//	version uint16                        (currently 1)
//	dim     uint32
//	shards  uint32                        (writer's layout, advisory)
//	count   uint64
//	count × signature records, in global insertion order:
//	  docID  uvarint length + bytes
//	  label  uvarint length + bytes
//	  nnz    uint32
//	  nnz × (idx int32, weight float64)   — strictly ascending idx
//
// Records are written in insertion order, so a snapshot reloaded at ANY
// shard count assigns the same global indices and returns identical TopK
// results.
const (
	snapshotMagic   = "FMDB"
	snapshotVersion = 1
	// maxSnapshotString bounds docID/label lengths when reading, so a
	// corrupt length prefix cannot trigger a giant allocation.
	maxSnapshotString = 1 << 20
	// maxSnapshotDim bounds the header dimension for the same reason:
	// per-record buffers scale with dim (and the model snapshot
	// allocates a dense idf vector), so a corrupt header must fail
	// instead of attempting a multi-gigabyte allocation. 1<<24 is ~4000x
	// the paper's symbol table.
	maxSnapshotDim = 1 << 24
	// maxSnapshotShards bounds the header shard count (the shard table
	// is allocated before any record is validated).
	maxSnapshotShards = 1 << 16
)

// WriteSnapshot serializes the database in the versioned binary snapshot
// format. Dimensions beyond the format's bound are rejected here, at
// write time, so a snapshot that serializes is always loadable. The
// snapshot covers one pinned view — a consistent prefix of the store —
// so concurrent writers neither block nor tear it. Every failure is a
// typed *SnapshotError (Path empty: the snapshot is a caller-owned
// stream).
//
//fmeter:errdomain snapshot
func (db *DB) WriteSnapshot(w io.Writer) error {
	v := db.pinView()
	defer db.unpinView(v)
	if v.closed {
		return errClosed()
	}
	if db.dim > maxSnapshotDim {
		return &SnapshotError{Err: fmt.Errorf("dimension %d exceeds snapshot format bound %d", db.dim, maxSnapshotDim)}
	}
	if len(db.shards) > maxSnapshotShards {
		return &SnapshotError{Err: fmt.Errorf("shard count %d exceeds snapshot format bound %d", len(db.shards), maxSnapshotShards)}
	}
	for gid := 0; gid < v.total; gid++ {
		s := v.at(gid)
		if len(s.DocID) > maxSnapshotString || len(s.Label) > maxSnapshotString {
			return &SnapshotError{Err: fmt.Errorf("signature %d doc-id/label exceeds snapshot string bound %d", gid, maxSnapshotString)}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing snapshot: %w", err)}
	}
	le := binary.LittleEndian
	if err := binary.Write(bw, le, uint16(snapshotVersion)); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing snapshot: %w", err)}
	}
	if err := binary.Write(bw, le, uint32(db.dim)); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing snapshot: %w", err)}
	}
	if err := binary.Write(bw, le, uint32(len(db.shards))); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing snapshot: %w", err)}
	}
	if err := binary.Write(bw, le, uint64(v.total)); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing snapshot: %w", err)}
	}
	for gid := 0; gid < v.total; gid++ {
		if err := writeSigRecord(bw, v.at(gid)); err != nil {
			return &SnapshotError{Err: fmt.Errorf("writing snapshot record %d: %w", gid, err)}
		}
	}
	if err := bw.Flush(); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing snapshot: %w", err)}
	}
	return nil
}

// writeSigRecord appends one signature record — docID, label (both
// uvarint-length-prefixed), nnz, then nnz (idx, weight) pairs — the
// encoding shared by the v1 snapshot stream and the v2 segment files.
func writeSigRecord(bw *bufio.Writer, s Signature) error {
	if len(s.DocID) > maxSnapshotString || len(s.Label) > maxSnapshotString {
		return fmt.Errorf("doc-id/label exceeds snapshot string bound %d", maxSnapshotString)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeStr := func(str string) error {
		n := binary.PutUvarint(scratch[:], uint64(len(str)))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		_, err := bw.WriteString(str)
		return err
	}
	if err := writeStr(s.DocID); err != nil {
		return err
	}
	if err := writeStr(s.Label); err != nil {
		return err
	}
	le := binary.LittleEndian
	le.PutUint32(scratch[:4], uint32(s.W.NNZ()))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	var rec [12]byte
	var werr error
	s.W.ForEach(func(i int, x float64) {
		if werr != nil {
			return
		}
		le.PutUint32(rec[:4], uint32(i))
		le.PutUint64(rec[4:12], math.Float64bits(x))
		_, werr = bw.Write(rec[:])
	})
	return werr
}

// writeSigRecordV2 appends one signature record in the v2.1 segment
// encoding: docID and label as in v1, then a uvarint nnz, the support
// indices as uvarint gaps (each index minus its predecessor minus one,
// with an implicit predecessor of -1 — strictly ascending indices make
// every gap non-negative and mostly one byte), then the weights as raw
// little-endian float64s. Weights are never transformed: a decoded
// record holds bit-identical values, only the index bytes shrink.
func writeSigRecordV2(bw *bufio.Writer, s Signature) error {
	if len(s.DocID) > maxSnapshotString || len(s.Label) > maxSnapshotString {
		return fmt.Errorf("doc-id/label exceeds snapshot string bound %d", maxSnapshotString)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeStr := func(str string) error {
		n := binary.PutUvarint(scratch[:], uint64(len(str)))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		_, err := bw.WriteString(str)
		return err
	}
	if err := writeStr(s.DocID); err != nil {
		return err
	}
	if err := writeStr(s.Label); err != nil {
		return err
	}
	idx, val := s.W.Support(), s.W.Values()
	n := binary.PutUvarint(scratch[:], uint64(len(idx)))
	if _, err := bw.Write(scratch[:n]); err != nil {
		return err
	}
	prev := int32(-1)
	for _, i := range idx {
		n := binary.PutUvarint(scratch[:], uint64(i-prev)-1)
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		prev = i
	}
	le := binary.LittleEndian
	var rec [8]byte
	for _, x := range val {
		le.PutUint64(rec[:], math.Float64bits(x))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// readSigRecordV2 parses one signature record written by
// writeSigRecordV2, decoding straight off the verified segment body via
// the byte cursor (segment bodies are always fully in memory — read or
// mapped — and the per-byte reader indirection used to dominate cold
// opens). The decoded strings and weight arrays are always heap copies:
// a signature must outlive the body it was decoded from, which may be a
// mapping released by Compact or Close. Truncation surfaces as
// io.ErrUnexpectedEOF, like readSigRecord.
// sigArena hands out idx/val backing in large pointer-free chunks so a
// segment decode does a handful of allocations instead of two zeroed
// makes per record (~4000 on a bench-sized segment — the malloc path
// was costing more than the decode itself). Chunks retired by take stay
// alive through the slices carved from them; nothing is freed early.
type sigArena struct {
	idx []int32
	val []float64
}

func (a *sigArena) take(n int) ([]int32, []float64) {
	if n > len(a.idx) {
		c := n
		if c < 1<<16 {
			c = 1 << 16
		}
		a.idx = make([]int32, c)
		a.val = make([]float64, c)
	}
	idx, val := a.idx[:n:n], a.val[:n:n]
	a.idx, a.val = a.idx[n:], a.val[n:]
	return idx, val
}

func readSigRecordV2(c *byteCursor, dim int, ar *sigArena) (Signature, error) {
	docID, err := readCursorString(c)
	if err != nil {
		return Signature{}, err
	}
	label, err := readCursorString(c)
	if err != nil {
		return Signature{}, err
	}
	nnz, err := c.uvarint()
	if err != nil {
		return Signature{}, err
	}
	if nnz > uint64(dim) {
		return Signature{}, fmt.Errorf("nnz %d exceeds dimension %d", nnz, dim)
	}
	idx, val := ar.take(int(nnz))
	// The gap loop runs once per stored non-zero — half a million times
	// on a bench-sized segment — so decode off locals with a single-byte
	// fast path (gaps in tf-idf supports are overwhelmingly < 128)
	// instead of paying a method call and re-slice per varint.
	b, pos := c.b, c.pos
	prev := int64(-1)
	for k := range idx {
		var gap uint64
		if pos < len(b) && b[pos] < 0x80 {
			gap = uint64(b[pos])
			pos++
		} else {
			v, m := binary.Uvarint(b[pos:])
			if m <= 0 {
				if m == 0 {
					return Signature{}, io.ErrUnexpectedEOF
				}
				return Signature{}, fmt.Errorf("varint overflows a 64-bit integer")
			}
			gap, pos = v, pos+m
		}
		// Bound the gap before accumulating: a 64-bit uvarint must not
		// wrap the index sum (dim is capped well below 2^31).
		if gap >= uint64(dim) {
			return Signature{}, fmt.Errorf("support index gap %d at position %d outside dimension %d", gap, k, dim)
		}
		i := prev + 1 + int64(gap)
		if i >= int64(dim) {
			return Signature{}, fmt.Errorf("support index %d at position %d outside dimension %d", i, k, dim)
		}
		idx[k] = int32(i)
		prev = i
	}
	c.pos = pos
	raw, err := c.take(int(nnz) * 8)
	if err != nil {
		return Signature{}, err
	}
	le := binary.LittleEndian
	norm2 := 0.0
	for k := range val {
		v := math.Float64frombits(le.Uint64(raw[k*8:]))
		if v == 0 {
			return Signature{}, fmt.Errorf("explicit zero at sparse index %d", idx[k])
		}
		val[k] = v
		norm2 += v * v
	}
	// The loops above enforced every SparseFromSorted invariant (strict
	// ascent, range, no zeros) and accumulated the norm in index order,
	// so the trusted constructor is exact — and skips a third full pass
	// over the support.
	w := vecmath.SparseFromSortedTrusted(dim, idx, val, norm2)
	return Signature{DocID: docID, Label: label, W: w}, nil
}

// readCursorString reads one uvarint-length-prefixed string from the
// cursor, bounding the length like readSnapString. The returned string
// is a copy — safe to keep after the cursor's body (possibly a mapping)
// is released.
func readCursorString(c *byteCursor) (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxSnapshotString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	b, err := c.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// readSnapString reads one uvarint-length-prefixed string, bounding the
// length so a corrupt prefix cannot trigger a giant allocation.
func readSnapString(br byteScanner) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxSnapshotString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// byteScanner is the reader a signature record is decoded from
// (bufio.Reader over a stream, bytes.Reader over a verified segment
// body).
type byteScanner interface {
	io.Reader
	io.ByteReader
}

// readSigRecord parses one signature record written by writeSigRecord.
// Truncation surfaces as io.ErrUnexpectedEOF (never bare io.EOF), so
// callers can add positional context with %w.
func readSigRecord(br byteScanner, dim int) (Signature, error) {
	docID, err := readSnapString(br)
	if err != nil {
		return Signature{}, noEOF(err)
	}
	label, err := readSnapString(br)
	if err != nil {
		return Signature{}, noEOF(err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Signature{}, noEOF(err)
	}
	le := binary.LittleEndian
	nnz := le.Uint32(hdr[:])
	if int(nnz) > dim {
		return Signature{}, fmt.Errorf("nnz %d exceeds dimension %d", nnz, dim)
	}
	idx := make([]int32, nnz)
	val := make([]float64, nnz)
	var rec [12]byte
	for k := range idx {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return Signature{}, noEOF(err)
		}
		idx[k] = int32(le.Uint32(rec[:4]))
		val[k] = math.Float64frombits(le.Uint64(rec[4:12]))
	}
	w, err := vecmath.SparseFromSorted(dim, idx, val)
	if err != nil {
		return Signature{}, err
	}
	return Signature{DocID: docID, Label: label, W: w}, nil
}

// ReadSnapshot parses a snapshot written by WriteSnapshot and loads it
// into a fresh database with the requested shard count; shards == 0
// reuses the writer's layout. Truncated or corrupt input yields an error
// naming the offending record, never a partially valid database. The
// per-shard inverted indexes are rebuilt incrementally as records load
// (each goes through DB.Add), so snapshots carry no index data and the
// format is unchanged from pre-index versions. Every failure is a typed
// *SnapshotError (Path empty: the snapshot is a caller-owned stream).
//
//fmeter:errdomain snapshot
func ReadSnapshot(r io.Reader, shards int) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading snapshot magic: %w", err)}
	}
	if string(magic) != snapshotMagic {
		return nil, &SnapshotError{Err: fmt.Errorf("bad snapshot magic %q", magic)}
	}
	le := binary.LittleEndian
	var version uint16
	if err := binary.Read(br, le, &version); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading snapshot version: %w", err)}
	}
	if version != snapshotVersion {
		return nil, &SnapshotError{Err: fmt.Errorf("unsupported snapshot version %d (have %d)", version, snapshotVersion)}
	}
	var dim32, wshards uint32
	var count uint64
	if err := binary.Read(br, le, &dim32); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading snapshot header: %w", err)}
	}
	if err := binary.Read(br, le, &wshards); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading snapshot header: %w", err)}
	}
	if err := binary.Read(br, le, &count); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading snapshot header: %w", err)}
	}
	if dim32 < 1 || dim32 > maxSnapshotDim {
		return nil, &SnapshotError{Err: fmt.Errorf("dimension %d outside [1, %d]", dim32, maxSnapshotDim)}
	}
	dim := int(dim32)
	if wshards > maxSnapshotShards {
		return nil, &SnapshotError{Err: fmt.Errorf("shard count %d exceeds bound %d", wshards, maxSnapshotShards)}
	}
	if shards == 0 {
		shards = int(wshards)
		if shards < 1 {
			shards = 1
		}
	}
	db, err := NewShardedDB(dim, shards)
	if err != nil {
		return nil, err
	}
	for gid := uint64(0); gid < count; gid++ {
		sig, err := readSigRecord(br, dim)
		if err != nil {
			return nil, &SnapshotError{Err: fmt.Errorf("record %d: %w", gid, err)}
		}
		if err := db.Add(sig); err != nil {
			return nil, &SnapshotError{Err: fmt.Errorf("record %d: %w", gid, err)}
		}
	}
	// Require clean EOF after record `count`: trailing bytes mean the
	// file is not the snapshot its header claims (a truncated write later
	// concatenated, or plain corruption) — loading it silently would hand
	// the operator a database that disagrees with what was saved.
	if _, err := br.ReadByte(); err == nil {
		return nil, &SnapshotError{Err: fmt.Errorf("trailing data after record %d", count)}
	} else if err != io.EOF {
		return nil, &SnapshotError{Err: fmt.Errorf("reading trailer: %w", err)}
	}
	return db, nil
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: inside a record an
// EOF always means truncation, and the caller's %w context names where.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
