package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// documentJSON is the wire form of a Document. Counts keys are function
// indices; encoding/json renders integer-keyed maps with string keys.
type documentJSON struct {
	ID         string         `json:"id"`
	Label      string         `json:"label,omitempty"`
	DurationNS int64          `json:"duration_ns"`
	Counts     map[int]uint64 `json:"counts"`
}

// WriteDocuments streams documents to w as JSON Lines, the logging
// daemon's on-disk format.
func WriteDocuments(w io.Writer, docs []*Document) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range docs {
		if d == nil {
			return fmt.Errorf("core: nil document in batch")
		}
		if err := enc.Encode(documentJSON{
			ID:         d.ID,
			Label:      d.Label,
			DurationNS: d.Duration.Nanoseconds(),
			Counts:     d.Counts,
		}); err != nil {
			return fmt.Errorf("core: encoding document %s: %w", d.ID, err)
		}
	}
	return bw.Flush()
}

// ReadDocuments parses a JSON Lines stream produced by WriteDocuments.
func ReadDocuments(r io.Reader) ([]*Document, error) {
	var docs []*Document
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var dj documentJSON
		if err := json.Unmarshal(sc.Bytes(), &dj); err != nil {
			return nil, fmt.Errorf("core: line %d: %w", line, err)
		}
		doc := &Document{
			ID:       dj.ID,
			Label:    dj.Label,
			Duration: time.Duration(dj.DurationNS),
			Counts:   dj.Counts,
		}
		if doc.Counts == nil {
			doc.Counts = make(map[int]uint64)
		}
		docs = append(docs, doc)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading documents: %w", err)
	}
	return docs, nil
}

// signatureJSON is the wire form of a Signature. Vectors are stored
// sparsely: most tf-idf weights are zero.
type signatureJSON struct {
	DocID   string          `json:"doc_id"`
	Label   string          `json:"label,omitempty"`
	Dim     int             `json:"dim"`
	Weights map[int]float64 `json:"weights"`
}

// WriteSignatures streams signatures to w as JSON Lines.
func WriteSignatures(w io.Writer, sigs []Signature) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range sigs {
		weights := make(map[int]float64)
		for i, x := range s.V {
			if x != 0 {
				weights[i] = x
			}
		}
		if err := enc.Encode(signatureJSON{
			DocID: s.DocID, Label: s.Label, Dim: s.V.Dim(), Weights: weights,
		}); err != nil {
			return fmt.Errorf("core: encoding signature %s: %w", s.DocID, err)
		}
	}
	return bw.Flush()
}

// ReadSignatures parses a JSON Lines stream produced by WriteSignatures.
func ReadSignatures(r io.Reader) ([]Signature, error) {
	var sigs []Signature
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sj signatureJSON
		if err := json.Unmarshal(sc.Bytes(), &sj); err != nil {
			return nil, fmt.Errorf("core: line %d: %w", line, err)
		}
		if sj.Dim < 1 {
			return nil, fmt.Errorf("core: line %d: invalid dimension %d", line, sj.Dim)
		}
		v := make([]float64, sj.Dim)
		for i, x := range sj.Weights {
			if i < 0 || i >= sj.Dim {
				return nil, fmt.Errorf("core: line %d: weight index %d outside dimension %d", line, i, sj.Dim)
			}
			v[i] = x
		}
		sigs = append(sigs, Signature{DocID: sj.DocID, Label: sj.Label, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading signatures: %w", err)
	}
	return sigs, nil
}
