package core

import (
	"fmt"

	"repro/internal/vecmath"
)

// Index is an inverted index over a shard's sparse signatures: one
// posting list per dimension, each holding the (local id, weight) pairs
// of the signatures whose support contains that dimension. A TopK query
// then touches only the posting lists in the query's support — with
// ~250-nnz queries over ~3815 dimensions that is a small fraction of the
// stored weight mass, versus the exhaustive scan's merge walk over every
// stored signature.
//
// Posting lists are kept sorted by local id for free: ids are assigned
// in Add order and only ever appended. Because a query's support is
// walked in ascending dimension order, each candidate's dot product
// accumulates its intersection terms in ascending index order — exactly
// the order Sparse.Dot visits them — so indexed dot products are
// bit-identical to the merge-walk dots of the scan path.
//
// Under the DB's epoch-view concurrency model the flat Index is
// entirely writer-private: only the active segment holds one, DB.Add
// mutates it under the writer lock, and published views never reference
// it — a view scores the active segment's frozen prefix with the
// canonical sparse dot instead (bit-identical, see view.go). Sealing
// re-encodes the Index into immutable blockPostings, which is what
// concurrent queries read. A bare Index used outside the DB remains
// single-writer: no Add concurrent with anything else; concurrent Dots
// calls against a quiescent index are safe (each query owns its
// Accumulator).
type Index struct {
	dim int
	n   int
	// ids[d] / ws[d] are the parallel posting arrays of dimension d:
	// the local ids (ascending) and stored weights of the signatures
	// whose support contains d.
	ids [][]int32
	ws  [][]float64
}

// NewIndex creates an empty inverted index over the given dimension.
//
//fmeter:errdomain config
func NewIndex(dim int) (*Index, error) {
	if dim < 1 {
		return nil, &ConfigError{Param: "index dimension", Value: dim, Min: 1}
	}
	return &Index{dim: dim, ids: make([][]int32, dim), ws: make([][]float64, dim)}, nil
}

// Dim returns the ambient dimension.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of indexed signatures.
func (ix *Index) Len() int { return ix.n }

// Postings returns the posting count of one dimension (test and
// introspection hook).
func (ix *Index) Postings(dim int) int { return len(ix.ids[dim]) }

// Add appends the next signature's weights to the posting lists and
// returns its local id. Like the other pre-validated hot-path ops it
// panics on a dimension mismatch; DB.Add validates before indexing.
func (ix *Index) Add(w *vecmath.Sparse) int32 {
	if w.Dim() != ix.dim {
		panic(fmt.Sprintf("core: index Add dimension mismatch %d vs %d", w.Dim(), ix.dim))
	}
	id := int32(ix.n)
	idx, val := w.Support(), w.Values()
	for k, i := range idx {
		ix.ids[i] = append(ix.ids[i], id)
		ix.ws[i] = append(ix.ws[i], val[k])
	}
	ix.n++
	return id
}

// Dots accumulates the dot product of q against every indexed signature
// into acc: after the call, acc.Get(id) is q·signature[id], an exact
// zero for signatures with no support overlap. The query support is
// walked in ascending dimension order, which is what makes each
// candidate's sum bit-identical to Sparse.Dot (see the type comment).
func (ix *Index) Dots(q *vecmath.Sparse, acc *vecmath.Accumulator) {
	if q.Dim() != ix.dim {
		panic(fmt.Sprintf("core: index Dots dimension mismatch %d vs %d", q.Dim(), ix.dim))
	}
	acc.Reset(ix.n)
	idx, val := q.Support(), q.Values()
	for k, i := range idx {
		if ids := ix.ids[i]; len(ids) > 0 {
			acc.ScatterMulAdd(val[k], ids, ix.ws[i])
		}
	}
}
