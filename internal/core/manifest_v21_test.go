package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// v21SegmentLayout locates the sections of a sealed v2.1 segment file:
// the flags byte, the row records, and the postings section. rows must
// be the segment's signatures in record order.
func v21SegmentLayout(t *testing.T, body []byte, rows []Signature) (rowsStart, postStart int) {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	for _, s := range rows {
		if err := writeSigRecordV2(bw, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	rowsStart = segHeaderSize + 1 // header + flags byte
	postStart = rowsStart + buf.Len()
	if postStart >= len(body) {
		t.Fatalf("postings section out of range: rows end at %d of %d body bytes", postStart, len(body))
	}
	if !bytes.Equal(body[rowsStart:postStart], buf.Bytes()) {
		t.Fatal("row re-encoding does not match the written segment file")
	}
	return rowsStart, postStart
}

// rewriteSegment replaces a segment file's body, recomputing both the
// file footer CRC and the manifest's CRC entry, so the corruption under
// test is structural — not a checksum mismatch.
func rewriteSegment(t *testing.T, dir, name string, body []byte) {
	t.Helper()
	crc := crc32.ChecksumIEEE(body)
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc)
	if err := os.WriteFile(filepath.Join(dir, name), append(append([]byte(nil), body...), foot[:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m manifestJSON
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for si := range m.Segments {
		for i := range m.Segments[si] {
			if m.Segments[si][i].File == name {
				m.Segments[si][i].CRC32 = crc
			}
		}
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV21PostingsCorruptionMatrix drives the corruption classes
// specific to the v2.1 postings section, each with a *valid* CRC (the
// footer and manifest are recomputed after the damage), so the typed
// error must come from the structural validation: a tampered posting
// count, an overlong (bad) varint, a truncated block stream, and an
// ordinal that names the wrong dimension. A plain CRC mismatch on the
// postings bytes is checked too. Every case yields a *SnapshotError
// naming the segment file and loads nothing — under both the resident
// loader and LoadDirMapped, since the mapped path runs the identical
// validation against the mapped bytes.
func TestV21PostingsCorruptionMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	const dim, nnz, n = 40, 7, 9
	sigs := randSigs(r, n, dim, nnz)
	dir := filepath.Join(t.TempDir(), "db")
	db, err := NewDB(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	clean := dirState(t, dir)
	var segName string
	for name := range clean {
		if name != manifestName {
			segName = name
		}
	}
	raw := clean[segName]
	body := raw[:len(raw)-4]
	if body[segHeaderSize]&segFlagPostings == 0 {
		t.Fatal("sealed segment written without a postings section")
	}
	_, postStart := v21SegmentLayout(t, body, sigs)

	restore := func() {
		for name, b := range clean {
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	loaders := []struct {
		mode string
		load func(string) (*DB, error)
	}{
		{"resident", LoadDir},
		{"mapped", LoadDirMapped},
	}
	mustFail := func(tag string) {
		t.Helper()
		for _, ld := range loaders {
			got, err := ld.load(dir)
			if err == nil {
				t.Fatalf("%s/%s: load succeeded", tag, ld.mode)
			}
			if got != nil {
				t.Fatalf("%s/%s: load returned a DB alongside the error", tag, ld.mode)
			}
			var snapErr *SnapshotError
			if !errors.As(err, &snapErr) {
				t.Fatalf("%s/%s: error %v is not a *SnapshotError", tag, ld.mode, err)
			}
			if filepath.Base(snapErr.Path) != segName {
				t.Fatalf("%s/%s: error names %s, want %s", tag, ld.mode, snapErr.Path, segName)
			}
		}
		restore()
	}
	mutate := func(tag string, fn func(b []byte) []byte) {
		t.Helper()
		rewriteSegment(t, dir, segName, fn(append([]byte(nil), body...)))
		mustFail(tag)
	}

	// Tampered posting count (the first uvarint of the section): the
	// bijection check against the summed supports rejects it.
	mutate("posting-count", func(b []byte) []byte {
		b[postStart]++ // n*nnz = 63 < 128: a single-byte uvarint
		return b
	})
	// An overlong varint (ten 0xFF bytes never terminate a uvarint)
	// where the posting count should be.
	mutate("bad-varint", func(b []byte) []byte {
		out := append([]byte(nil), b[:postStart]...)
		out = append(out, bytes.Repeat([]byte{0xFF}, 10)...)
		return append(out, b[postStart:]...)
	})
	// Truncated postings: the blob (the file tail) loses bytes, so a
	// block's streams run out mid-decode.
	mutate("truncated-blocks", func(b []byte) []byte {
		return b[:len(b)-3]
	})
	// The last blob byte is the final block's last ordinal: any other
	// value either leaves its signature's support (out of range) or
	// lands on a support entry of a different dimension — the per-
	// posting dimension check catches both.
	mutate("wrong-ordinal", func(b []byte) []byte {
		b[len(b)-1] ^= 0x07
		return b
	})
	// Extra bytes after the blob: the section must consume the body
	// exactly.
	mutate("trailing-postings", func(b []byte) []byte {
		return append(b, 0x00)
	})
	// And a plain bit flip in the postings bytes without recomputing the
	// footer: the CRC rejects it before validation runs.
	flipped := append([]byte(nil), raw...)
	flipped[postStart+2] ^= 0x20
	if err := os.WriteFile(filepath.Join(dir, segName), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	mustFail("crc-mismatch")

	// The restored directory still loads and answers identically.
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := randSigs(r, 1, dim, nnz)[0].W
	want, err := db.TopKSparse(q, 5, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.TopKSparse(q, 5, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "restored dir", got, want)
}

// writeLegacySegmentFile writes a version-1 segment file (the pre-v2.1
// on-disk form: v1 signature records, no postings section) and returns
// its body CRC — the format old snapshots still sit in on disk.
func writeLegacySegmentFile(t *testing.T, path string, dim int, rows []Signature) uint32 {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	le := binary.LittleEndian
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic)
	le.PutUint16(hdr[4:6], segVersion)
	le.PutUint32(hdr[6:10], uint32(dim))
	le.PutUint32(hdr[10:14], uint32(len(rows)))
	if _, err := bw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	for _, s := range rows {
		if err := writeSigRecord(bw, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	var foot [4]byte
	le.PutUint32(foot[:], crc)
	if err := os.WriteFile(path, append(buf.Bytes(), foot[:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	return crc
}

// TestV2ToV21RoundTrip pins read compatibility and data fidelity across
// the record-format generations: a directory of legacy version-1
// segment records loads, re-saves in the v2.1 form, reloads, and the
// signatures survive byte-identically — proven by identical v1
// snapshot streams at every hop and by re-encoding the final rows back
// into the legacy record form, byte-identical to the original files.
func TestV2ToV21RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	const dim, nnz, n, shards = 70, 9, 34, 2
	sigs := randSigs(r, n, dim, nnz)
	src, err := NewShardedDB(dim, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	var wantSnap bytes.Buffer
	if err := src.WriteSnapshot(&wantSnap); err != nil {
		t.Fatal(err)
	}

	// Hand-build a legacy v2 directory: one version-1 record file per
	// shard, manifest referencing them.
	legacyDir := filepath.Join(t.TempDir(), "legacy")
	if err := os.MkdirAll(legacyDir, 0o755); err != nil {
		t.Fatal(err)
	}
	m := manifestJSON{
		Format:   manifestFormat,
		Version:  manifestVersion,
		Dim:      dim,
		Shards:   shards,
		Count:    n,
		NextSeg:  shards,
		Segments: make([][]manifestSegment, shards),
	}
	legacyBytes := make(map[string][]byte)
	for si := 0; si < shards; si++ {
		var rows []Signature
		for gid := si; gid < n; gid += shards {
			rows = append(rows, sigs[gid])
		}
		name := segmentFileName(uint64(si))
		crc := writeLegacySegmentFile(t, filepath.Join(legacyDir, name), dim, rows)
		raw, err := os.ReadFile(filepath.Join(legacyDir, name))
		if err != nil {
			t.Fatal(err)
		}
		legacyBytes[name] = raw
		m.Segments[si] = []manifestSegment{{ID: uint64(si), File: name, Records: len(rows), CRC32: crc}}
	}
	mraw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(legacyDir, manifestName), mraw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Hop 1: the legacy directory loads (v2 files still load).
	dbA, err := LoadDir(legacyDir)
	if err != nil {
		t.Fatal(err)
	}
	var snapA bytes.Buffer
	if err := dbA.WriteSnapshot(&snapA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA.Bytes(), wantSnap.Bytes()) {
		t.Fatal("legacy-loaded store's v1 snapshot differs from the source")
	}

	// Hop 2: re-save as v2.1 (sealed segments persist their compressed
	// postings) and reload.
	newDir := filepath.Join(t.TempDir(), "v21")
	if err := dbA.SaveDir(newDir); err != nil {
		t.Fatal(err)
	}
	for name, b := range dirState(t, newDir) {
		if name == manifestName {
			continue
		}
		if v := binary.LittleEndian.Uint16(b[4:6]); v != segVersionBlocks {
			t.Fatalf("re-saved segment %s has record version %d, want %d", name, v, segVersionBlocks)
		}
	}
	dbB, err := LoadDir(newDir)
	if err != nil {
		t.Fatal(err)
	}
	var snapB bytes.Buffer
	if err := dbB.WriteSnapshot(&snapB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapB.Bytes(), wantSnap.Bytes()) {
		t.Fatal("v2.1-reloaded store's v1 snapshot differs from the source")
	}

	// Hop 3: re-encode the reloaded rows back into legacy record files —
	// byte-identical to the originals, so the v2.1 generation loses
	// nothing a downgrade would need.
	for si := 0; si < shards; si++ {
		var rows []Signature
		vB := dbB.pinView()
		for gid := si; gid < n; gid += shards {
			rows = append(rows, vB.at(gid))
		}
		dbB.unpinView(vB)
		name := segmentFileName(uint64(si))
		path := filepath.Join(t.TempDir(), fmt.Sprintf("re-%s", name))
		writeLegacySegmentFile(t, path, dim, rows)
		re, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, legacyBytes[name]) {
			t.Fatalf("re-encoded legacy segment %s differs from the original", name)
		}
	}

	// The two directories answer queries identically.
	q := randSigs(r, 1, dim, nnz)[0].W
	want, err := src.TopKSparse(q, 7, CosineMetric())
	if err != nil {
		t.Fatal(err)
	}
	for tag, d := range map[string]*DB{"legacy": dbA, "v21": dbB} {
		got, err := d.TopKSparse(q, 7, CosineMetric())
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, tag, got, want)
	}
}

// TestReadSigRecordV2Bounds pins the overflow guards of the v2.1 row
// decoder: a 64-bit nnz or support-index gap must come back as an
// error, never as a panic (makeslice / index wrap).
func TestReadSigRecordV2Bounds(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(0) // empty docID
	buf.WriteByte(0) // empty label
	buf.Write(binary.AppendUvarint(nil, 1<<63))
	if _, err := readSigRecordV2(&byteCursor{b: buf.Bytes()}, 10, &sigArena{}); err == nil {
		t.Fatal("2^63 nnz should fail")
	}
	buf.Reset()
	buf.WriteByte(0)
	buf.WriteByte(0)
	buf.Write(binary.AppendUvarint(nil, 1))       // nnz = 1
	buf.Write(binary.AppendUvarint(nil, 1<<63+7)) // gap wraps int64
	if _, err := readSigRecordV2(&byteCursor{b: buf.Bytes()}, 10, &sigArena{}); err == nil {
		t.Fatal("overflowing support gap should fail")
	}
}

// TestValidateGapOverflowErrors pins the postings-blob id-gap guard: a
// gap uvarint large enough to wrap the id sum negative must be a typed
// validation error, not an index-out-of-range panic.
func TestValidateGapOverflowErrors(t *testing.T) {
	sup := [][]int32{{0}, {0}}
	bp := &blockPostings{
		dim:       1,
		n:         2,
		nPostings: 2,
		vals:      [][]float64{{1}, {1}},
		dir:       []int32{0, 1},
		blocks:    []blockDesc{{firstID: 0, count: 2, ordW: 1}},
	}
	bp.blob = binary.AppendUvarint(nil, 1<<63+1<<31) // the id gap
	bp.blob = append(bp.blob, 0, 0)                  // two ordinals
	if err := bp.validate(sup, []int32{0}); err == nil {
		t.Fatal("overflowing id gap should fail validation")
	}
}
