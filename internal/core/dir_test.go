package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirState reads every file in a snapshot directory, keyed by name —
// the before/after probe the incrementality assertions compare.
func dirState(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestSaveDirLoadDirRoundTrip checks the v2 round trip: a reloaded
// directory answers TopK bit-identically (both routings), remembers its
// directory (an immediate re-save rewrites nothing), and keeps working
// through further Add/Save cycles.
func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	const dim, nnz, k = 150, 18, 12
	sigs := randSigs(r, 120, dim, nnz)
	query := randSigs(r, 1, dim, nnz)[0].W
	dir := filepath.Join(t.TempDir(), "db")

	src, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	src.SetSegmentSize(16)
	if err := src.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	want, err := src.TopKSparse(query, k, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := src.DirtySegments(); got != 0 {
		t.Fatalf("after SaveDir: %d dirty segments, want 0", got)
	}

	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != src.Len() || back.Dim() != src.Dim() || back.Shards() != src.Shards() {
		t.Fatalf("reloaded len/dim/shards = %d/%d/%d, want %d/%d/%d",
			back.Len(), back.Dim(), back.Shards(), src.Len(), src.Dim(), src.Shards())
	}
	if back.Segments() != src.Segments() {
		t.Fatalf("reloaded segments = %d, want %d", back.Segments(), src.Segments())
	}
	for _, m := range []Metric{EuclideanMetric(), CosineMetric(), MinkowskiMetric(1)} {
		ref, err := src.TopKSparse(query, k, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.TopKSparse(query, k, m)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "reloaded indexed "+m.Name, got, ref)
		sameResults(t, "reloaded scan "+m.Name, scanResults(t, back, query, k, m), ref)
	}
	_ = want

	// A reloaded DB knows its directory: saving straight back rewrites
	// no segment files.
	before := dirState(t, dir)
	if got := back.DirtySegments(); got != 0 {
		t.Fatalf("freshly loaded DB: %d dirty segments, want 0", got)
	}
	if err := back.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	after := dirState(t, dir)
	for name, b := range before {
		if name == manifestName {
			continue
		}
		if !bytes.Equal(after[name], b) {
			t.Fatalf("no-op re-save rewrote %s", name)
		}
	}

	// Add/save again and reload once more: labels survive.
	extra := randSigs(r, 7, dim, nnz)
	for i := range extra {
		extra[i].DocID = fmt.Sprintf("extra-%d", i)
	}
	if err := back.AddAll(extra); err != nil {
		t.Fatal(err)
	}
	if err := back.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	again, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != back.Len() {
		t.Fatalf("second reload len = %d, want %d", again.Len(), back.Len())
	}
	all := again.All()
	found := 0
	for _, s := range all {
		if strings.HasPrefix(s.DocID, "extra-") {
			found++
		}
	}
	if found != len(extra) {
		t.Fatalf("reload kept %d of %d appended signatures", found, len(extra))
	}
}

// TestSaveDirIncremental is the O(new data) assertion behind the
// tentpole: after ingesting N and saving, adding M << N signatures and
// saving again must rewrite only the active segments (at most one per
// shard) plus the manifest — every sealed segment file stays
// byte-identical on disk.
func TestSaveDirIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	const dim, nnz, shards = 100, 12, 2
	dir := filepath.Join(t.TempDir(), "db")
	db, err := NewShardedDB(dim, shards)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(20)
	if err := db.AddAll(randSigs(r, 200, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	before := dirState(t, dir)

	// M = 4 new signatures land in the (new) active segments of at most
	// two shards.
	if err := db.AddAll(randSigs(r, 4, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	dirty := db.DirtySegments()
	if dirty < 1 || dirty > shards {
		t.Fatalf("after 4 adds: %d dirty segments, want 1..%d", dirty, shards)
	}
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	after := dirState(t, dir)

	changed := 0
	for name, b := range after {
		if name == manifestName {
			continue
		}
		if prev, ok := before[name]; ok && !bytes.Equal(prev, b) {
			t.Fatalf("sealed segment file %s was rewritten with different content", name)
		} else if !ok {
			changed++ // a new segment file: the fresh active segment
		}
	}
	if changed != dirty {
		t.Fatalf("incremental save wrote %d new segment files, want %d", changed, dirty)
	}

	// Compaction dirties exactly its outputs; the next save rewrites
	// them and removes the replaced files.
	db.Seal()
	db.Compact()
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	final := dirState(t, dir)
	if got, want := len(final)-1, db.Segments(); got != want {
		t.Fatalf("after compacting save: %d segment files on disk, want %d", got, want)
	}
	re, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != db.Len() {
		t.Fatalf("post-compaction reload len = %d, want %d", re.Len(), db.Len())
	}
	q := randSigs(r, 1, dim, nnz)[0].W
	want, err := db.TopKSparse(q, 9, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.TopKSparse(q, 9, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "post-compaction reload", got, want)
}

// TestSaveDirNeverRewritesReferencedFiles pins the crash-safety
// invariant behind the manifest-last ordering: a file referenced by the
// previous (durable) manifest is never renamed over, even when its
// segment grew — the rewrite takes a fresh id, and the old file is only
// removed after the new manifest lands. A crash at any point therefore
// leaves a loadable snapshot: the old manifest's files are all intact
// until the new manifest replaces it.
func TestSaveDirNeverRewritesReferencedFiles(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	const dim, nnz = 60, 8
	dir := filepath.Join(t.TempDir(), "db")
	db, err := NewDB(dim)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(64)
	// 10 signatures: one partially filled active segment.
	if err := db.AddAll(randSigs(r, 10, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	first := dirState(t, dir)
	// The active segment grows and is re-saved: its old file must stay
	// byte-identical until the new manifest is durable, then be removed
	// as an orphan — never rewritten in place.
	if err := db.AddAll(randSigs(r, 5, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	second := dirState(t, dir)
	for name, b := range second {
		if name == manifestName {
			continue
		}
		if prev, ok := first[name]; ok && !bytes.Equal(prev, b) {
			t.Fatalf("file %s from the previous snapshot was rewritten in place", name)
		}
	}
	// The grown segment landed under a fresh name and the superseded
	// file is gone.
	fresh := 0
	for name := range second {
		if _, ok := first[name]; !ok {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d fresh segment files after the grown-active re-save, want 1", fresh)
	}
	for name := range first {
		if name == manifestName {
			continue
		}
		if _, ok := second[name]; !ok {
			continue // superseded file removed: expected
		}
	}
	if len(second) != 2 { // one segment file + manifest (single shard, one segment)
		t.Fatalf("directory holds %d files, want 2", len(second))
	}
	// And the final state loads with everything present.
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 15 {
		t.Fatalf("reloaded len = %d, want 15", back.Len())
	}
}

// TestDirCorruptionMatrix drives every corruption class the v2 format
// must catch: segment files truncated at every field boundary (and a
// sweep of byte prefixes), a single flipped bit (CRC), a deleted
// manifest-referenced segment, and manifest tampering. Each must yield
// a *SnapshotError naming the offending file — never a partial DB.
func TestDirCorruptionMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	const dim, nnz = 30, 5
	dir := filepath.Join(t.TempDir(), "db")
	db, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(4)
	if err := db.AddAll(randSigs(r, 11, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	clean := dirState(t, dir)
	var segName string
	for name := range clean {
		if strings.HasPrefix(name, "seg-") {
			segName = name
			break
		}
	}
	if segName == "" {
		t.Fatal("no segment file written")
	}

	// restore rewrites the directory to its clean state.
	restore := func() {
		for name, b := range clean {
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	// mustFailNaming asserts both the resident and mapped loaders fail
	// with a *SnapshotError naming the expected file.
	mustFailNaming := func(tag, file string) {
		t.Helper()
		for _, ld := range []struct {
			mode string
			load func(string) (*DB, error)
		}{{"resident", LoadDir}, {"mapped", LoadDirMapped}} {
			got, err := ld.load(dir)
			if err == nil {
				t.Fatalf("%s/%s: load succeeded", tag, ld.mode)
			}
			if got != nil {
				t.Fatalf("%s/%s: load returned a DB alongside the error", tag, ld.mode)
			}
			var snapErr *SnapshotError
			if !errors.As(err, &snapErr) {
				t.Fatalf("%s/%s: error %v is not a *SnapshotError", tag, ld.mode, err)
			}
			if filepath.Base(snapErr.Path) != file {
				t.Fatalf("%s/%s: error names %s, want %s", tag, ld.mode, snapErr.Path, file)
			}
		}
	}

	segPath := filepath.Join(dir, segName)
	raw := clean[segName]

	// Truncations at every field boundary of the segment layout — the
	// header fields, a record's docID/label/nnz/pair edges — plus a
	// sweep of arbitrary prefixes. All are caught (short file or CRC).
	cuts := []int{0, 2, 4, 6, 10, 14, 15, 16, 20, 24, 32, len(raw) / 2, len(raw) - 5, len(raw) - 1}
	for i := 0; i < len(raw); i += 7 {
		cuts = append(cuts, i)
	}
	for _, cut := range cuts {
		if cut >= len(raw) {
			continue
		}
		if err := os.WriteFile(segPath, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		mustFailNaming(fmt.Sprintf("truncate@%d", cut), segName)
	}
	restore()

	// One flipped bit anywhere in the body: the CRC must catch it.
	for _, pos := range []int{0, 5, 9, 13, segHeaderSize + 1, len(raw) / 2, len(raw) - 6} {
		b := append([]byte(nil), raw...)
		b[pos] ^= 0x10
		if err := os.WriteFile(segPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		mustFailNaming(fmt.Sprintf("bitflip@%d", pos), segName)
	}
	// A flipped bit in the footer itself is equally fatal.
	b := append([]byte(nil), raw...)
	b[len(b)-2] ^= 0x01
	if err := os.WriteFile(segPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	mustFailNaming("bitflip@footer", segName)
	restore()

	// Trailing garbage after the footer: the CRC/footer no longer lines
	// up, so the file is rejected.
	if err := os.WriteFile(segPath, append(append([]byte(nil), raw...), 0xAA, 0xBB), 0o644); err != nil {
		t.Fatal(err)
	}
	mustFailNaming("trailing-bytes", segName)
	restore()

	// Deleting a manifest-referenced segment names that file and wraps
	// the fs error.
	if err := os.Remove(segPath); err != nil {
		t.Fatal(err)
	}
	{
		_, err := LoadDir(dir)
		var snapErr *SnapshotError
		if !errors.As(err, &snapErr) || filepath.Base(snapErr.Path) != segName {
			t.Fatalf("missing segment error = %v, want *SnapshotError naming %s", err, segName)
		}
		if !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("missing segment error should wrap os.ErrNotExist, got %v", err)
		}
	}
	restore()

	// Manifest tampering: invalid JSON, wrong format marker, wrong
	// version, inconsistent counts — all name the manifest.
	mpath := filepath.Join(dir, manifestName)
	for tag, content := range map[string]string{
		"bad-json":      "{not json",
		"bad-format":    `{"format":"other","version":2,"dim":30,"shards":2,"count":11,"segments":[[],[]]}`,
		"bad-version":   `{"format":"fmdb-dir","version":9,"dim":30,"shards":2,"count":11,"segments":[[],[]]}`,
		"bad-dim":       `{"format":"fmdb-dir","version":2,"dim":0,"shards":2,"count":11,"segments":[[],[]]}`,
		"short-count":   `{"format":"fmdb-dir","version":2,"dim":30,"shards":2,"count":11,"segments":[[],[]]}`,
		"missing-shard": `{"format":"fmdb-dir","version":2,"dim":30,"shards":2,"count":11,"segments":[[]]}`,
	} {
		if err := os.WriteFile(mpath, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		mustFailNaming(tag, manifestName)
	}
	restore()
	// Deleting the manifest names it too.
	if err := os.Remove(mpath); err != nil {
		t.Fatal(err)
	}
	mustFailNaming("missing-manifest", manifestName)
	restore()

	// After all that abuse, the restored directory still loads.
	if _, err := LoadDir(dir); err != nil {
		t.Fatalf("restored directory failed to load: %v", err)
	}
}

// TestV1SnapshotInterop pins the compatibility promise: single-file v1
// snapshots keep loading (and writing), and a v1 store moved into the
// v2 directory format answers queries bit-identically.
func TestV1SnapshotInterop(t *testing.T) {
	r := rand.New(rand.NewSource(139))
	const dim, nnz, k = 90, 10, 8
	sigs := randSigs(r, 60, dim, nnz)
	query := randSigs(r, 1, dim, nnz)[0].W
	src, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	want, err := src.TopKSparse(query, k, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := src.WriteSnapshot(&v1); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(v1.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "migrated")
	if err := loaded.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	v2, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.TopKSparse(query, k, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "v1->v2 migration", got, want)
	// And back out to v1 again.
	var round bytes.Buffer
	if err := v2.WriteSnapshot(&round); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(round.Bytes(), v1.Bytes()) {
		t.Fatal("v1 -> v2 -> v1 snapshot bytes changed")
	}
}
