package core

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/vecmath"
)

// stressN scales iteration counts: the default keeps `go test` quick,
// FMETER_STRESS=1 (the `make stress` entry point) elevates everything.
func stressN(normal, stressed int) int {
	if os.Getenv("FMETER_STRESS") != "" {
		return stressed
	}
	return normal
}

// refResults precomputes, for every store prefix length n in [0, N],
// the serialized-execution answer of each query: TopK hits and the
// classify label a quiescent DB holding exactly sigs[:n] returns. The
// reference DB is single-shard, default layout — the bit-identical-at-
// any-layout guarantee (property-swept elsewhere) makes it a valid
// reference for every sharding, sealing, compaction, and mapped/
// resident combination the concurrent sweep runs.
type refResults struct {
	hits   [][][]SearchResult // [n][qi]
	labels [][]string         // [n][qi]
}

func buildRef(t *testing.T, sigs []Signature, queries []*vecmath.Sparse, k int, metric Metric) *refResults {
	t.Helper()
	ref := &refResults{
		hits:   make([][][]SearchResult, len(sigs)+1),
		labels: make([][]string, len(sigs)+1),
	}
	rdb, err := NewDB(sigs[0].Dim())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(sigs); n++ {
		if n > 0 {
			if err := rdb.Add(sigs[n-1]); err != nil {
				t.Fatal(err)
			}
		}
		ref.hits[n] = make([][]SearchResult, len(queries))
		ref.labels[n] = make([]string, len(queries))
		if n == 0 {
			continue
		}
		for qi, q := range queries {
			hits, err := rdb.TopKSparse(q, k, metric)
			if err != nil {
				t.Fatal(err)
			}
			ref.hits[n][qi] = hits
			label, err := rdb.ClassifySparse(q, k, metric)
			if err != nil {
				t.Fatal(err)
			}
			ref.labels[n][qi] = label
		}
	}
	return ref
}

// sameHits reports bit-identity: same hit sequence, same DocIDs, same
// score bits.
func sameHits(a, b []SearchResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Signature.DocID != b[i].Signature.DocID ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// TestConcurrentInterleavingSweep is the serialized-equivalence
// property sweep: goroutines interleave Add/AddAll/Seal/Compact/
// SaveDir/config flips with TopK/TopKBatch/Classify*/Stats queries
// under every layout axis (shards × workers × segment size × policy
// compaction × mapped/resident), and every query result must be
// bit-identical to a serialized execution against the store prefix its
// pinned view froze. Run under -race this is the epoch-view safety
// proof: no torn reads, no result a quiescent DB could not produce.
func TestConcurrentInterleavingSweep(t *testing.T) {
	const dim, nnz, k = 48, 10, 7
	nSigs := stressN(300, 1200)
	readerIters := stressN(400, 4000)
	r := rand.New(rand.NewSource(11))
	sigs := randSigs(r, nSigs, dim, nnz)
	queryRows := randSigs(r, 4, dim, nnz)
	queries := make([]*vecmath.Sparse, len(queryRows))
	for i := range queryRows {
		queries[i] = queryRows[i].W
	}

	combos := []struct {
		name    string
		shards  int
		workers int
		segSize int
		fanout  int
		mapped  bool
		metric  Metric
	}{
		{"1shard-seq-cosine", 1, -1, 64, 0, false, CosineMetric()},
		{"3shard-par-tiered-cosine", 3, 0, 32, 2, false, CosineMetric()},
		{"2shard-par-euclidean", 2, 2, 48, 0, false, EuclideanMetric()},
		{"2shard-mapped-euclidean", 2, 2, 48, 0, true, EuclideanMetric()},
		{"3shard-mapped-tiered-cosine", 3, 0, 32, 2, true, CosineMetric()},
	}
	for _, cb := range combos {
		cb := cb
		t.Run(cb.name, func(t *testing.T) {
			ref := buildRef(t, sigs, queries, k, cb.metric)

			var db *DB
			dir := t.TempDir()
			start := 0
			if cb.mapped {
				// Mapped mode starts from a sealed, mapped prefix and
				// streams the rest — compactions then splice mapped blobs
				// away under pinned views (the deferred-reclaim path).
				seed, err := NewShardedDB(dim, cb.shards)
				if err != nil {
					t.Fatal(err)
				}
				seed.SetSegmentSize(cb.segSize)
				start = nSigs / 2
				if err := seed.AddAll(sigs[:start]); err != nil {
					t.Fatal(err)
				}
				seed.Seal()
				if err := seed.SaveDir(dir); err != nil {
					t.Fatal(err)
				}
				if err := seed.Close(); err != nil {
					t.Fatal(err)
				}
				if db, err = LoadDirMapped(dir); err != nil {
					t.Fatal(err)
				}
			} else {
				var err error
				if db, err = NewShardedDB(dim, cb.shards); err != nil {
					t.Fatal(err)
				}
			}
			defer db.Close()
			db.SetWorkers(cb.workers)
			db.SetSegmentSize(cb.segSize)
			db.setPruneFloor(1)
			if cb.fanout > 0 {
				if err := db.SetCompactionPolicy(CompactionPolicy{TierFanout: cb.fanout}); err != nil {
					t.Fatal(err)
				}
			}

			done := make(chan struct{})
			var wg sync.WaitGroup

			// Writer: stream the remaining signatures with seals,
			// compactions, incremental saves, and query-config flips
			// interleaved — every mutation publishes a fresh view the
			// readers race to pin.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(done)
				for i := start; i < nSigs; {
					switch {
					case i%41 == 0 && i+5 <= nSigs:
						if err := db.AddAll(sigs[i : i+5]); err != nil {
							t.Errorf("AddAll at %d: %v", i, err)
							return
						}
						i += 5
					default:
						if err := db.Add(sigs[i]); err != nil {
							t.Errorf("Add at %d: %v", i, err)
							return
						}
						i++
					}
					switch {
					case i%37 == 0:
						db.Seal()
					case i%53 == 0:
						db.Compact()
					case i%61 == 0:
						if err := db.SaveDir(dir); err != nil {
							t.Errorf("SaveDir at %d: %v", i, err)
							return
						}
					case i%23 == 0:
						db.SetPruned(i%46 == 0)
					case i%29 == 0:
						db.SetIndexed(i%58 == 0)
					}
				}
			}()

			running := func() bool {
				select {
				case <-done:
					return false
				default:
					return true
				}
			}

			// Reader A: exact serialized-equivalence. Pin a view, read
			// the prefix length it froze, and demand the bit-identical
			// reference answer for that exact prefix.
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(seed))
					for it := 0; it < readerIters && running(); it++ {
						qi := rr.Intn(len(queries))
						v := db.pinView()
						n := v.total
						got, err := db.topk(v, queries[qi], nil, k, cb.metric, v.cfg.workers, nil)
						db.unpinView(v)
						if n == 0 {
							if !errors.Is(err, ErrEmptyDB) {
								t.Errorf("empty view: err=%v, want ErrEmptyDB", err)
								return
							}
							continue
						}
						if err != nil {
							t.Errorf("topk at prefix %d: %v", n, err)
							return
						}
						if !sameHits(got, ref.hits[n][qi]) {
							t.Errorf("query %d at pinned prefix %d diverges from serialized execution", qi, n)
							return
						}
					}
				}(int64(100 + g))
			}

			// Reader B: public batch path. The batch pins one view, so
			// all results must agree with the reference at one single
			// prefix inside the [before, after] Len window.
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := make([][]SearchResult, len(queries))
				for it := 0; it < readerIters && running(); it++ {
					nLo := db.Len()
					err := db.TopKBatchInto(queries, k, cb.metric, out)
					nHi := db.Len()
					if nLo == 0 && err != nil {
						continue // raced the very first Add; empty view is legal
					}
					if err != nil {
						t.Errorf("TopKBatchInto in [%d, %d]: %v", nLo, nHi, err)
						return
					}
					found := false
					for n := nLo; n <= nHi && !found; n++ {
						ok := n > 0
						for qi := range queries {
							if ok && !sameHits(out[qi], ref.hits[n][qi]) {
								ok = false
							}
						}
						found = ok
					}
					if !found {
						t.Errorf("batch result matches no serialized prefix in [%d, %d]", nLo, nHi)
						return
					}
				}
			}()

			// Reader C: classify + stats paths; labels must match the
			// reference at some prefix in the Len window.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rr := rand.New(rand.NewSource(7))
				for it := 0; it < readerIters && running(); it++ {
					qi := rr.Intn(len(queries))
					nLo := db.Len()
					var label string
					var err error
					if it%2 == 0 {
						label, err = db.ClassifySparse(queries[qi], k, cb.metric)
					} else {
						label, _, err = db.ClassifySparseStats(queries[qi], k, cb.metric)
					}
					nHi := db.Len()
					if nLo == 0 && err != nil {
						continue
					}
					if err != nil {
						t.Errorf("classify in [%d, %d]: %v", nLo, nHi, err)
						return
					}
					found := false
					for n := nLo; n <= nHi; n++ {
						if n > 0 && label == ref.labels[n][qi] {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("label %q matches no serialized prefix in [%d, %d]", label, nLo, nHi)
						return
					}
				}
			}()

			wg.Wait()
			if t.Failed() {
				return
			}
			// Quiescent end state: the final view must be the full store.
			if got := db.Len(); got != nSigs {
				t.Fatalf("final Len %d, want %d", got, nSigs)
			}
			for qi, q := range queries {
				got, err := db.TopKSparse(q, k, cb.metric)
				if err != nil {
					t.Fatal(err)
				}
				if !sameHits(got, ref.hits[nSigs][qi]) {
					t.Fatalf("final query %d diverges from serialized execution", qi)
				}
			}
		})
	}
}

// TestConcurrentWriters proves mutator-side serialization: concurrent
// Add streams, seals, and compactions from many goroutines interleave
// without losing a signature, and the final store answers exactly like
// a serial build over the same multiset.
func TestConcurrentWriters(t *testing.T) {
	const dim, nnz, k, writers = 32, 8, 5, 4
	perWriter := stressN(150, 1000)
	r := rand.New(rand.NewSource(3))
	all := randSigs(r, writers*perWriter, dim, nnz)
	q := randSigs(r, 1, dim, nnz)[0].W

	db, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetSegmentSize(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := db.Add(all[w*perWriter+i]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%50 == 0 {
					db.Seal()
				}
				if i%70 == 0 {
					db.Compact()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := db.Len(); got != len(all) {
		t.Fatalf("Len %d after concurrent writers, want %d", got, len(all))
	}
	// The interleaving permutes insertion order, so scores (not order)
	// must match a reference holding the same multiset: compare the hit
	// score sets against a serial DB built in gid order of this one.
	serial, err := NewDB(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.AddAll(db.All()); err != nil {
		t.Fatal(err)
	}
	got, err := db.TopKSparse(q, k, CosineMetric())
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.TopKSparse(q, k, CosineMetric())
	if err != nil {
		t.Fatal(err)
	}
	if !sameHits(got, want) {
		t.Fatal("concurrently built store diverges from serial rebuild in its own insertion order")
	}
}

// TestCloseUnderLoad closes a mapped DB while queries and an Add stream
// are in flight: in-flight calls either complete normally against their
// pinned views or fail with the typed *ConfigError, Close drains every
// reader before releasing the segment mappings, each mapping is
// released exactly once, and every call arriving after Close fails
// typed. Run under -race.
func TestCloseUnderLoad(t *testing.T) {
	const dim, nnz, k = 32, 8, 5
	nSeed := stressN(400, 1500)
	r := rand.New(rand.NewSource(17))
	sigs := randSigs(r, nSeed+nSeed, dim, nnz)
	q := randSigs(r, 1, dim, nnz)[0].W

	dir := t.TempDir()
	seed, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	seed.SetSegmentSize(64)
	if err := seed.AddAll(sigs[:nSeed]); err != nil {
		t.Fatal(err)
	}
	seed.Seal()
	if err := seed.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	mapped := 0
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			if sg.mf != nil {
				mapped++
			}
		}
	}
	if mapped == 0 {
		t.Skip("platform without mmap support: no mappings to race against Close")
	}
	rel0 := mapReleaseCount.Load()

	var typedLate, completed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Query load.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hits, err := db.TopKSparse(q, k, CosineMetric())
				if err != nil {
					var ce *ConfigError
					if !errors.As(err, &ce) {
						t.Errorf("in-flight query failed untyped: %v", err)
						return
					}
					typedLate.Add(1)
					return // closed: every later call fails too
				}
				if len(hits) != k {
					t.Errorf("in-flight query returned %d hits, want %d", len(hits), k)
					return
				}
				completed.Add(1)
			}
		}()
	}
	// Add stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := nSeed; i < len(sigs); i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Add(sigs[i]); err != nil {
				var ce *ConfigError
				if !errors.As(err, &ce) {
					t.Errorf("in-flight Add failed untyped: %v", err)
				} else {
					typedLate.Add(1)
				}
				return
			}
			if i%100 == 0 {
				db.Compact() // splice mapped blobs under load
			}
		}
	}()

	// Let the load establish, then close under it — concurrently from
	// two goroutines, since Close must also be safe against itself.
	for completed.Load() < 10 {
		runtime.Gosched()
	}
	var errs [2]error
	var cwg sync.WaitGroup
	for c := 0; c < 2; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			errs[c] = db.Close()
		}(c)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	for c, err := range errs {
		if err != nil {
			t.Fatalf("Close[%d]: %v", c, err)
		}
	}
	if got := mapReleaseCount.Load() - rel0; got != int64(mapped) {
		t.Fatalf("%d mapping releases across load+Compact+Close, want exactly %d", got, mapped)
	}
	// Late arrivals: every operation on the closed DB fails typed.
	var ce *ConfigError
	if _, err := db.TopKSparse(q, k, CosineMetric()); !errors.As(err, &ce) {
		t.Fatalf("TopK after Close: %v, want *ConfigError", err)
	}
	if err := db.Add(sigs[0]); !errors.As(err, &ce) {
		t.Fatalf("Add after Close: %v, want *ConfigError", err)
	}
	if err := db.SaveDir(dir); !errors.As(err, &ce) {
		t.Fatalf("SaveDir after Close: %v, want *ConfigError", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := mapReleaseCount.Load() - rel0; got != int64(mapped) {
		t.Fatalf("second Close changed release count to %d, want %d", got, mapped)
	}
	// The previous snapshot must still load: Close never touches disk.
	re, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("reload after Close: %v", err)
	}
	re.Close()
}
