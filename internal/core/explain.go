package core

import (
	"fmt"
	"sort"
)

// TermWeight is one term's contribution to a signature, resolved to a
// human-readable function name when a name table is supplied.
type TermWeight struct {
	// Term is the function index (the dimension).
	Term int
	// Name is the function name, when known.
	Name string
	// Weight is the tf-idf weight (or weight difference, for Contrast).
	Weight float64
}

// TopTerms returns the k largest-magnitude components of a signature,
// descending by |weight|. names may be nil; when provided it must cover
// the signature's dimension. This is the operator-facing "why does this
// signature look like that" view: the kernel functions whose (idf-damped)
// relative frequencies dominate the interval.
func TopTerms(sig Signature, k int, names []string) ([]TermWeight, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k=%d must be >= 1", k)
	}
	if names != nil && len(names) < sig.V.Dim() {
		return nil, fmt.Errorf("core: name table has %d entries for dimension %d", len(names), sig.V.Dim())
	}
	var terms []TermWeight
	for i, w := range sig.V {
		if w != 0 {
			tw := TermWeight{Term: i, Weight: w}
			if names != nil {
				tw.Name = names[i]
			}
			terms = append(terms, tw)
		}
	}
	sort.Slice(terms, func(a, b int) bool {
		wa, wb := abs(terms[a].Weight), abs(terms[b].Weight)
		if wa != wb {
			return wa > wb
		}
		return terms[a].Term < terms[b].Term
	})
	if k > len(terms) {
		k = len(terms)
	}
	return terms[:k], nil
}

// Contrast returns the k terms that most distinguish signature a from
// signature b, ranked by |a_i - b_i| descending with the signed
// difference preserved (positive = stronger in a). It is the similarity
// search's inverse: given two behaviours, which kernel functions separate
// them.
func Contrast(a, b Signature, k int, names []string) ([]TermWeight, error) {
	if a.V.Dim() != b.V.Dim() {
		return nil, fmt.Errorf("core: contrast dimensions differ: %d vs %d", a.V.Dim(), b.V.Dim())
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k=%d must be >= 1", k)
	}
	if names != nil && len(names) < a.V.Dim() {
		return nil, fmt.Errorf("core: name table has %d entries for dimension %d", len(names), a.V.Dim())
	}
	var terms []TermWeight
	for i := range a.V {
		d := a.V[i] - b.V[i]
		if d != 0 {
			tw := TermWeight{Term: i, Weight: d}
			if names != nil {
				tw.Name = names[i]
			}
			terms = append(terms, tw)
		}
	}
	sort.Slice(terms, func(x, y int) bool {
		wx, wy := abs(terms[x].Weight), abs(terms[y].Weight)
		if wx != wy {
			return wx > wy
		}
		return terms[x].Term < terms[y].Term
	})
	if k > len(terms) {
		k = len(terms)
	}
	return terms[:k], nil
}

// abs avoids importing math for a single operation in a hot comparator.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
