package core

import (
	"fmt"
	"sort"

	"repro/internal/vecmath"
)

// TermWeight is one term's contribution to a signature, resolved to a
// human-readable function name when a name table is supplied.
type TermWeight struct {
	// Term is the function index (the dimension).
	Term int
	// Name is the function name, when known.
	Name string
	// Weight is the tf-idf weight (or weight difference, for Contrast).
	Weight float64
}

// TopTerms returns the k largest-magnitude components of a signature,
// descending by |weight|. names may be nil; when provided it must cover
// the signature's dimension. This is the operator-facing "why does this
// signature look like that" view: the kernel functions whose (idf-damped)
// relative frequencies dominate the interval. The walk covers only the
// sparse support — zero components can never rank. Validation failures
// are typed *ConfigError.
//
//fmeter:errdomain config
func TopTerms(sig Signature, k int, names []string) ([]TermWeight, error) {
	if k < 1 {
		return nil, &ConfigError{Param: "k", Value: k, Min: 1}
	}
	if sig.W == nil {
		return nil, &ConfigError{Param: "signature", Msg: fmt.Sprintf("signature %s has no weight vector", sig.DocID)}
	}
	if names != nil && len(names) < sig.Dim() {
		return nil, &ConfigError{Param: "names", Msg: fmt.Sprintf("name table has %d entries for dimension %d", len(names), sig.Dim())}
	}
	terms := make([]TermWeight, 0, sig.W.NNZ())
	sig.W.ForEach(func(i int, w float64) {
		tw := TermWeight{Term: i, Weight: w}
		if names != nil {
			tw.Name = names[i]
		}
		terms = append(terms, tw)
	})
	sortTerms(terms)
	if k > len(terms) {
		k = len(terms)
	}
	return terms[:k], nil
}

// Contrast returns the k terms that most distinguish signature a from
// signature b, ranked by |a_i - b_i| descending with the signed
// difference preserved (positive = stronger in a). It is the similarity
// search's inverse: given two behaviours, which kernel functions separate
// them. Only the union of the two supports can differ, so the walk is
// O(nnz_a + nnz_b). Validation failures are typed *ConfigError.
//
//fmeter:errdomain config
func Contrast(a, b Signature, k int, names []string) ([]TermWeight, error) {
	if a.W == nil || b.W == nil {
		return nil, &ConfigError{Param: "signature", Msg: "contrast signature has no weight vector"}
	}
	if a.Dim() != b.Dim() {
		return nil, &ConfigError{Param: "signature", Msg: fmt.Sprintf("contrast dimensions differ: %d vs %d", a.Dim(), b.Dim())}
	}
	if k < 1 {
		return nil, &ConfigError{Param: "k", Value: k, Min: 1}
	}
	if names != nil && len(names) < a.Dim() {
		return nil, &ConfigError{Param: "names", Msg: fmt.Sprintf("name table has %d entries for dimension %d", len(names), a.Dim())}
	}
	terms := make([]TermWeight, 0, a.W.NNZ()+b.W.NNZ())
	a.W.ForEachUnion(b.W, func(i int, wa, wb float64) {
		d := wa - wb
		if d == 0 {
			return
		}
		tw := TermWeight{Term: i, Weight: d}
		if names != nil {
			tw.Name = names[i]
		}
		terms = append(terms, tw)
	})
	sortTerms(terms)
	if k > len(terms) {
		k = len(terms)
	}
	return terms[:k], nil
}

// sortTerms orders by |weight| descending, then term index ascending — a
// total order, so the result is deterministic regardless of how the
// candidates were gathered.
func sortTerms(terms []TermWeight) {
	sort.Slice(terms, func(a, b int) bool {
		wa, wb := abs(terms[a].Weight), abs(terms[b].Weight)
		if wa != wb {
			return wa > wb
		}
		return terms[a].Term < terms[b].Term
	})
}

// abs avoids importing math for a single operation in a hot comparator.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PruneStats are one query's threshold-pruning counters — the
// operator-facing "what did pruning actually buy" view for -prune A/Bs
// (see prune.go). All counters cover the indexed path only; scan
// queries report zeros.
type PruneStats struct {
	// Segments is the number of segments the indexed walk visited;
	// SegmentsPruned of them took the threshold-pruned walk (the rest
	// were unprunable against the heap root, still active, or already
	// covered by the seed pass).
	Segments       int64
	SegmentsPruned int64
	// Candidates counts the signatures covered by pruned segment walks;
	// CandidatesScored of them survived the bound filters and had their
	// exact score recomputed. The gap is the walk's saving: covered
	// candidates whose exact score was never needed.
	Candidates       int64
	CandidatesScored int64
	// DimsConsidered counts (segment, query-dim) pairs with postings;
	// DimsSkipped of them fell past the essential cutoff and were never
	// accumulated.
	DimsConsidered int64
	DimsSkipped    int64
	// BlocksConsidered counts the posting blocks under the considered
	// dims; BlocksSkipped of them were never decoded (skipped dims'
	// blocks, all-zero blocks, and block-max skips).
	BlocksConsidered int64
	BlocksSkipped    int64
}

// add accumulates s into p (the per-shard to per-query reduction).
func (p *PruneStats) add(s *PruneStats) {
	p.Segments += s.Segments
	p.SegmentsPruned += s.SegmentsPruned
	p.Candidates += s.Candidates
	p.CandidatesScored += s.CandidatesScored
	p.DimsConsidered += s.DimsConsidered
	p.DimsSkipped += s.DimsSkipped
	p.BlocksConsidered += s.BlocksConsidered
	p.BlocksSkipped += s.BlocksSkipped
}

// TopKSparseStats is TopKSparse returning the query's pruning counters
// alongside the hits. Results are bit-identical to TopKSparse; only the
// counters are extra.
func (db *DB) TopKSparseStats(query *vecmath.Sparse, k int, metric Metric) ([]SearchResult, PruneStats, error) {
	var st PruneStats
	if query.Dim() != db.dim {
		return nil, st, &DimensionError{What: "query", Got: query.Dim(), Want: db.dim}
	}
	v := db.pinView()
	defer db.unpinView(v)
	sc := db.scratch.Get()
	defer db.scratch.Put(sc)
	res, err := db.topkWith(v, sc, query, nil, k, metric, v.cfg.workers, nil)
	if err != nil {
		return nil, st, err
	}
	for si := range sc.shards {
		st.add(&sc.shards[si].stats)
	}
	return res, st, nil
}

// ClassifySparseStats is ClassifySparse returning the underlying
// retrieval's pruning counters alongside the label.
func (db *DB) ClassifySparseStats(query *vecmath.Sparse, k int, metric Metric) (string, PruneStats, error) {
	var st PruneStats
	if query.Dim() != db.dim {
		return "", st, &DimensionError{What: "query", Got: query.Dim(), Want: db.dim}
	}
	v := db.pinView()
	defer db.unpinView(v)
	sc := db.scratch.Get()
	defer db.scratch.Put(sc)
	hits, err := db.topkWith(v, sc, query, nil, k, metric, v.cfg.workers, sc.hits[:0])
	if err != nil {
		return "", st, err
	}
	sc.hits = hits
	for si := range sc.shards {
		st.add(&sc.shards[si].stats)
	}
	return voteLabel(hits, sc.voteMap()), st, nil
}
