package core

import "os"

// Fault-injection seam for the snapshot filesystem path.
//
// Every filesystem operation SaveDir/LoadDir performs — directory
// creation, temp-file creation, buffered writes, fsync, close, rename,
// removal, directory sync, directory listing, file reads — funnels
// through the fs* wrappers below, which consult fsFault before touching
// the real filesystem. Tests install a hook that fails a chosen
// operation (a transient error) or every operation from a chosen point
// on (a simulated crash: the process "dies" mid-save and even cleanup
// stops happening), then prove the directory invariants hold at every
// single step: the previous snapshot stays loadable, no partial
// directory is ever observable, and every surfaced failure is a typed
// *SnapshotError. Production never sets the hook; the nil check is the
// only cost.
type fsOp uint8

const (
	opMkdirAll fsOp = iota
	opCreateTemp
	opWrite
	opSync
	opClose
	opRename
	opRemove
	opSyncDir
	opReadDir
	opReadFile
)

// opNames is indexed by fsOp, for failure-matrix test output.
var opNames = [...]string{
	opMkdirAll:   "mkdirall",
	opCreateTemp: "createtemp",
	opWrite:      "write",
	opSync:       "sync",
	opClose:      "close",
	opRename:     "rename",
	opRemove:     "remove",
	opSyncDir:    "syncdir",
	opReadDir:    "readdir",
	opReadFile:   "readfile",
}

func (op fsOp) String() string { return opNames[op] }

// fsFault, when non-nil, may veto any snapshot-path filesystem
// operation by returning an error; the operation is then never
// attempted. Tests install it; it must be nil whenever snapshot
// operations can run concurrently.
var fsFault func(op fsOp, path string) error

func fsCheck(op fsOp, path string) error {
	if fsFault != nil {
		return fsFault(op, path)
	}
	return nil
}

func fsMkdirAll(path string, perm os.FileMode) error {
	if err := fsCheck(opMkdirAll, path); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}

func fsCreateTemp(dir, pattern string) (*os.File, error) {
	if err := fsCheck(opCreateTemp, dir); err != nil {
		return nil, err
	}
	return os.CreateTemp(dir, pattern)
}

func fsWrite(f *os.File, b []byte) (int, error) {
	if err := fsCheck(opWrite, f.Name()); err != nil {
		return 0, err
	}
	return f.Write(b)
}

func fsSync(f *os.File) error {
	if err := fsCheck(opSync, f.Name()); err != nil {
		return err
	}
	return f.Sync()
}

func fsClose(f *os.File) error {
	if err := fsCheck(opClose, f.Name()); err != nil {
		// A vetoed close still closes the descriptor: a real crashed
		// process leaks no fds, and neither may a simulated one.
		f.Close()
		return err
	}
	return f.Close()
}

func fsRename(oldpath, newpath string) error {
	if err := fsCheck(opRename, newpath); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

func fsRemove(path string) error {
	if err := fsCheck(opRemove, path); err != nil {
		return err
	}
	return os.Remove(path)
}

func fsReadDir(dir string) ([]os.DirEntry, error) {
	if err := fsCheck(opReadDir, dir); err != nil {
		return nil, err
	}
	return os.ReadDir(dir)
}

func fsReadFile(path string) ([]byte, error) {
	if err := fsCheck(opReadFile, path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// faultFile routes a file's writes through the seam so buffered writers
// (the segment writer's bufio.Writer) hit injected faults too.
type faultFile struct{ f *os.File }

func (w faultFile) Write(b []byte) (int, error) { return fsWrite(w.f, b) }
