// Package core implements the paper's primary contribution: embedding
// kernel function invocation counts into the classical vector space model
// (Salton, Wong, Yang 1975) to obtain formal, indexable, low-level system
// signatures (§2.1).
//
// The mapping is:
//
//   - "term"     → a core-kernel function (identified by its index in the
//     symbol table, which is induced by its start address);
//   - "document" → the per-function invocation counts observed over one
//     monitoring interval;
//   - "corpus"   → a collection of monitored intervals.
//
// Each document j becomes a weight vector v_j = [w_1j, ..., w_Nj]^T with
// w_ij = tf_ij × idf_i, where
//
//	tf_ij  = n_ij / Σ_k n_kj          (length-normalized term frequency)
//	idf_i  = log(|D| / |{d : t_i∈d}|) (inverse document frequency)
//
// The tf normalization prevents bias toward longer monitoring runs; the
// idf factor attenuates functions that occur in every interval (the
// "prepositions" of kernel execution — e.g. the top-ranked virtual memory
// routines), including uniform measurement interference from the logging
// daemon itself (§5).
package core

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/vecmath"
)

// Document is one monitoring interval: raw per-function invocation counts
// plus identifying metadata. Counts are sparse — most of the ~3800
// dimensions are zero in a typical interval.
type Document struct {
	// ID uniquely names the interval (e.g. "scp-0042").
	ID string
	// Label is the class label when known ("scp", "kcompile", ...); empty
	// for unlabeled documents.
	Label string
	// Duration is the monitoring interval length. It does not enter the
	// tf-idf computation (tf is length-normalized by construction) but is
	// retained because it is a daemon configuration parameter (§5).
	Duration time.Duration
	// Counts maps function index (FuncID) to invocation count.
	Counts map[int]uint64
}

// NewDocument builds a document from a dense count vector, storing only
// non-zero entries.
func NewDocument(id, label string, d time.Duration, dense []uint64) *Document {
	doc := &Document{ID: id, Label: label, Duration: d, Counts: make(map[int]uint64)}
	for i, c := range dense {
		if c != 0 {
			doc.Counts[i] = c
		}
	}
	return doc
}

// Total returns the total number of invocations in the document (the tf
// denominator Σ_k n_kj).
func (d *Document) Total() uint64 {
	var t uint64
	for _, c := range d.Counts {
		t += c
	}
	return t
}

// TF returns the document's term-frequency vector as a sparse vector:
// tf_i = n_i / Σ_k n_k.
func (d *Document) TF() vecmath.SparseVector {
	tf := vecmath.NewSparse()
	total := float64(d.Total())
	if total == 0 {
		return tf
	}
	for i, c := range d.Counts {
		tf.Set(i, float64(c)/total)
	}
	return tf
}

// Signature is a document embedded into the vector space: a tf-idf weight
// vector plus provenance. The canonical representation is sparse — a
// monitoring interval touches a few hundred of the ~3815 kernel
// functions, so W stores sorted (index, weight) pairs with a cached norm
// and every signature-sized computation (similarity scans, kernel
// evaluations, persistence) runs in O(nnz). Dense is the derived view for
// the few consumers that need per-component arithmetic.
type Signature struct {
	DocID string
	Label string
	// W is the sparse tf-idf weight vector. It is never nil for
	// signatures produced by this package (Transform, ReadSignatures,
	// snapshot loading); hand-built signatures must populate it, e.g. via
	// SignatureFromDense.
	W *vecmath.Sparse
}

// SignatureFromDense wraps a dense weight vector as a signature,
// extracting the sparse canonical form.
func SignatureFromDense(docID, label string, v vecmath.Vector) Signature {
	return Signature{DocID: docID, Label: label, W: vecmath.DenseToSparse(v)}
}

// Dim returns the signature's ambient dimension.
func (s Signature) Dim() int { return s.W.Dim() }

// Dense materializes the signature's weight vector.
func (s Signature) Dense() vecmath.Vector { return s.W.Dense() }

// Corpus is a collection of documents over a fixed term space of dimension
// Dim (the size of the core-kernel symbol table).
type Corpus struct {
	dim  int
	docs []*Document
	df   []int // document frequency per term, maintained incrementally
}

// NewCorpus creates an empty corpus over dim terms.
//
//fmeter:errdomain config
func NewCorpus(dim int) (*Corpus, error) {
	if dim < 1 {
		return nil, &ConfigError{Param: "dimension", Value: dim, Min: 1}
	}
	return &Corpus{dim: dim, df: make([]int, dim)}, nil
}

// Dim returns the term-space dimension.
func (c *Corpus) Dim() int { return c.dim }

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.docs) }

// Docs returns the documents in insertion order. Callers must not mutate
// the returned slice.
func (c *Corpus) Docs() []*Document { return c.docs }

// Add appends a document to the corpus, validating its term indices.
//
//fmeter:errdomain config
func (c *Corpus) Add(doc *Document) error {
	if doc == nil {
		return &ConfigError{Param: "document", Msg: "nil document"}
	}
	for i := range doc.Counts {
		if i < 0 || i >= c.dim {
			return &ConfigError{Param: "document", Msg: fmt.Sprintf("document %s has term %d outside dimension %d", doc.ID, i, c.dim)}
		}
	}
	c.docs = append(c.docs, doc)
	for i, n := range doc.Counts {
		if n > 0 {
			c.df[i]++
		}
	}
	return nil
}

// DocumentFrequency returns |{d : t_i ∈ d}| for every term.
func (c *Corpus) DocumentFrequency() []int {
	out := make([]int, len(c.df))
	copy(out, c.df)
	return out
}

// Labels returns the distinct labels present in the corpus, in first-seen
// order.
func (c *Corpus) Labels() []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range c.docs {
		if d.Label != "" && !seen[d.Label] {
			seen[d.Label] = true
			out = append(out, d.Label)
		}
	}
	return out
}

// ByLabel returns the documents carrying the given label.
func (c *Corpus) ByLabel(label string) []*Document {
	var out []*Document
	for _, d := range c.docs {
		if d.Label == label {
			out = append(out, d)
		}
	}
	return out
}

// Model is a fitted tf-idf weighting: the idf vector learned from a
// training corpus. Applying the model to new documents embeds them into
// the same vector space, which is what lets a classifier trained on one
// corpus score signatures retrieved later.
type Model struct {
	dim int
	idf []float64
}

// Fit computes the idf model from the corpus:
//
//	idf_i = log(|D| / df_i)
//
// Terms absent from every document get idf 0 (they contribute nothing, and
// there is no evidence to weight them by).
//
//fmeter:errdomain config
func (c *Corpus) Fit() (*Model, error) {
	if len(c.docs) == 0 {
		return nil, &ConfigError{Param: "corpus", Msg: "cannot fit tf-idf on an empty corpus"}
	}
	m := &Model{dim: c.dim, idf: make([]float64, c.dim)}
	n := float64(len(c.docs))
	for i, df := range c.df {
		if df > 0 {
			m.idf[i] = math.Log(n / float64(df))
		}
	}
	return m, nil
}

// Dim returns the model's term-space dimension.
func (m *Model) Dim() int { return m.dim }

// IDF returns a copy of the fitted idf vector.
func (m *Model) IDF() []float64 {
	out := make([]float64, len(m.idf))
	copy(out, m.idf)
	return out
}

// Transform embeds one document into the vector space: w_i = tf_i × idf_i.
// The signature is built sparse-first — the document's support is sorted
// and weighted in O(nnz log nnz), with no dense intermediate, so
// embedding cost scales with the interval's footprint rather than the
// symbol table. Weights that come out exactly zero (idf-damped ubiquitous
// terms) are dropped from the support, matching what extracting the
// dense form would store. The returned signature is NOT
// length-normalized; use Normalize when a method requires unit vectors,
// as the paper does for SVM classification ("scaled into the unit-ball
// using the L2 norm").
//
//fmeter:errdomain config
func (m *Model) Transform(doc *Document) (Signature, error) {
	if doc == nil {
		return Signature{}, &ConfigError{Param: "document", Msg: "nil document"}
	}
	idx := make([]int32, 0, len(doc.Counts))
	for i := range doc.Counts {
		if i < 0 || i >= m.dim {
			return Signature{}, &ConfigError{Param: "document", Msg: fmt.Sprintf("document %s term %d outside dimension %d", doc.ID, i, m.dim)}
		}
		//fmeter:map-order-ok support indices are sorted right below
		idx = append(idx, int32(i))
	}
	slices.Sort(idx)
	val := make([]float64, 0, len(idx))
	nz := idx[:0]
	if total := float64(doc.Total()); total > 0 {
		for _, i := range idx {
			if w := float64(doc.Counts[int(i)]) / total * m.idf[i]; w != 0 {
				nz = append(nz, i)
				val = append(val, w)
			}
		}
	}
	w, err := vecmath.SparseFromSorted(m.dim, nz, val)
	if err != nil {
		return Signature{}, &ConfigError{Param: "document", Msg: fmt.Sprintf("document %s", doc.ID), Err: err}
	}
	return Signature{DocID: doc.ID, Label: doc.Label, W: w}, nil
}

// TransformAll embeds a slice of documents.
//
//fmeter:errdomain config
func (m *Model) TransformAll(docs []*Document) ([]Signature, error) {
	out := make([]Signature, 0, len(docs))
	for _, d := range docs {
		s, err := m.Transform(d)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Signatures fits the corpus and embeds every document in one step — the
// common path when the whole corpus is available up front, matching the
// paper's offline transformation ("the difference is later transformed
// into tf-idf scores, once an entire corpus is generated").
func (c *Corpus) Signatures() ([]Signature, *Model, error) {
	m, err := c.Fit()
	if err != nil {
		return nil, nil, err
	}
	sigs, err := m.TransformAll(c.docs)
	if err != nil {
		return nil, nil, err
	}
	return sigs, m, nil
}

// Normalize L2-normalizes the signatures in place (unit-ball scaling).
// Signatures with no weight vector are skipped, matching the old dense
// representation's tolerance of zero-value signatures.
func Normalize(sigs []Signature) {
	for i := range sigs {
		if sigs[i].W != nil {
			sigs[i].W.Normalize()
		}
	}
}
