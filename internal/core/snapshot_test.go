package core

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vecmath"
)

// TestSnapshotRoundTripAcrossShardCounts writes a sharded DB snapshot,
// reloads it at several shard counts (including the writer's own layout
// via shards=0), and checks that TopK results are identical — the
// operator guarantee: a restart, with or without re-sharding, never
// changes query results.
func TestSnapshotRoundTripAcrossShardCounts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const dim = 200
	sigs := randSigs(r, 150, dim, 20)
	src, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	raw := snap.Bytes()

	query := randSigs(r, 1, dim, 20)[0].W
	want, err := src.TopKSparse(query, 20, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 2, 5, 16} {
		db, err := ReadSnapshot(bytes.NewReader(raw), shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		wantShards := shards
		if wantShards == 0 {
			wantShards = 3 // the writer's layout
		}
		if db.Shards() != wantShards {
			t.Fatalf("shards=%d: reloaded with %d shards", shards, db.Shards())
		}
		if db.Len() != src.Len() || db.Dim() != src.Dim() {
			t.Fatalf("shards=%d: len/dim %d/%d, want %d/%d", shards, db.Len(), db.Dim(), src.Len(), src.Dim())
		}
		for _, metric := range []Metric{EuclideanMetric(), CosineMetric(), MinkowskiMetric(1)} {
			got, err := db.TopKSparse(query, 20, metric)
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, metric.Name, err)
			}
			ref := got
			if metric.Name == "euclidean" {
				ref = want
			} else {
				ref, err = src.TopKSparse(query, 20, metric)
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := range got {
				if got[i].Signature.DocID != ref[i].Signature.DocID || got[i].Score != ref[i].Score ||
					got[i].Signature.Label != ref[i].Signature.Label {
					t.Fatalf("shards=%d %s: hit %d = (%s, %v), want (%s, %v)", shards, metric.Name, i,
						got[i].Signature.DocID, got[i].Score, ref[i].Signature.DocID, ref[i].Score)
				}
			}
		}
	}
}

// TestSnapshotCorruptAndShortFiles drives the error paths: truncations
// at every prefix length must fail cleanly (never panic, never return a
// DB), and targeted corruptions must be caught by validation.
func TestSnapshotCorruptAndShortFiles(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const dim = 50
	src, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddAll(randSigs(r, 10, dim, 8)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	raw := snap.Bytes()

	// Every strict prefix is a short file.
	for _, cut := range []int{0, 2, 4, 5, 8, 13, 14, 20, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut]), 0); err == nil {
			t.Fatalf("truncation at %d bytes should fail", cut)
		}
	}
	// A truncation inside a record reports unexpected EOF, not a bare EOF.
	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)-1]), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-record truncation error = %v, want io.ErrUnexpectedEOF", err)
	}

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), raw...)
		mutate(b)
		_, err := ReadSnapshot(bytes.NewReader(b), 0)
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = 'X' }); err == nil {
		t.Error("bad magic should fail")
	}
	if err := corrupt(func(b []byte) { b[4] = 99 }); err == nil {
		t.Error("unsupported version should fail")
	}
	// Index bytes live after the header and the first docID/label/nnz;
	// smash a weight index to an out-of-range value.
	if err := corrupt(func(b []byte) {
		for i := 14; i < len(b)-12; i++ {
			b[i] = 0xff // eventually clobbers an index into garbage
		}
	}); err == nil {
		t.Error("corrupted record body should fail")
	}
	if _, err := ReadSnapshot(bytes.NewReader(nil), 0); err == nil {
		t.Error("empty input should fail")
	}
}

// TestReadSnapshotRejectsTrailingGarbage is the regression test for the
// silent-acceptance bug: a snapshot followed by any extra bytes (a
// truncated file later concatenated with another, or plain corruption)
// must fail with an error naming the problem, not load silently.
func TestReadSnapshotRejectsTrailingGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const dim = 40
	db, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(randSigs(r, 8, dim, 6)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := db.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	raw := snap.Bytes()
	// The clean snapshot loads.
	if _, err := ReadSnapshot(bytes.NewReader(raw), 0); err != nil {
		t.Fatalf("clean snapshot failed: %v", err)
	}
	// Any trailing bytes — one zero, text, or a whole second snapshot —
	// must be rejected.
	for _, tail := range [][]byte{{0}, []byte("garbage"), raw} {
		if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), raw...), tail...)), 0); err == nil {
			t.Fatalf("snapshot with %d trailing bytes loaded silently", len(tail))
		}
	}
}

// TestJSONLinesHugeRecord is the regression test for the 16 MiB scanner
// token cap: a single document or signature record larger than the old
// bufio.Scanner limit must round-trip, not fail with "token too long".
func TestJSONLinesHugeRecord(t *testing.T) {
	huge := strings.Repeat("x", 17<<20) // 17 MiB, past the old 1<<24 cap
	d := doc(huge, "big", map[int]uint64{1: 2, 5: 9})
	var buf bytes.Buffer
	if err := WriteDocuments(&buf, []*Document{d, doc("small", "", map[int]uint64{0: 1})}); err != nil {
		t.Fatal(err)
	}
	docs, err := ReadDocuments(&buf)
	if err != nil {
		t.Fatalf("huge document line: %v", err)
	}
	if len(docs) != 2 || docs[0].ID != huge || docs[1].ID != "small" {
		t.Fatal("huge document did not round-trip")
	}
	sig := Signature{DocID: huge, Label: "big", W: vecmath.DenseToSparse(vecmath.Vector{0, 1, 0, 2})}
	var sbuf bytes.Buffer
	if err := WriteSignatures(&sbuf, []Signature{sig}); err != nil {
		t.Fatal(err)
	}
	sigs, err := ReadSignatures(&sbuf)
	if err != nil {
		t.Fatalf("huge signature line: %v", err)
	}
	if len(sigs) != 1 || sigs[0].DocID != huge || sigs[0].Dim() != 4 {
		t.Fatal("huge signature did not round-trip")
	}
}

// TestModelSnapshotRoundTrip checks the binary model snapshot against
// its JSON sibling: identical idf restoration, identical Transform.
func TestModelSnapshotRoundTrip(t *testing.T) {
	c, err := NewCorpus(80)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 12; i++ {
		counts := make(map[int]uint64)
		for j := 0; j < 10; j++ {
			counts[r.Intn(80)] = uint64(1 + r.Intn(100))
		}
		if err := c.Add(doc("d", "", counts)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModelSnapshot(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	back, err := ReadModelSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	a, b := m.IDF(), back.IDF()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("idf[%d] = %v, want %v", i, b[i], a[i])
		}
	}
	newDoc := doc("q", "", map[int]uint64{3: 2, 40: 5})
	s1, err := m.Transform(newDoc)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := back.Transform(newDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Dense().Equal(s2.Dense(), 0) {
		t.Error("restored model transforms differently")
	}
	// Error paths: nil model, truncations, bad magic.
	if err := WriteModelSnapshot(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil model should fail")
	}
	for _, cut := range []int{0, 3, 6, 10, len(raw) - 1} {
		if _, err := ReadModelSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 'Z'
	if _, err := ReadModelSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
}

// TestSnapshotGiantHeaderRejected: corrupt headers claiming absurd
// dimensions must fail validation instead of attempting the allocation.
func TestSnapshotGiantHeaderRejected(t *testing.T) {
	db, err := NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(randSigs(rand.New(rand.NewSource(1)), 2, 8, 3)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := db.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	raw := snap.Bytes()
	// dim lives at bytes 6..10 (magic 4 + version 2), little-endian.
	for _, giant := range [][]byte{{0xff, 0xff, 0xff, 0xff}, {0, 0, 0, 0}} {
		b := append([]byte(nil), raw...)
		copy(b[6:10], giant)
		if _, err := ReadSnapshot(bytes.NewReader(b), 0); err == nil {
			t.Errorf("dim bytes %v should be rejected", giant)
		}
	}
	// A giant shard-count header is rejected before the shard table is
	// allocated (bytes 10..14).
	b := append([]byte(nil), raw...)
	copy(b[10:14], []byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadSnapshot(bytes.NewReader(b), 0); err == nil {
		t.Error("giant shard count should be rejected")
	}
	// Write-time validation: oversized doc-ids never reach disk.
	long, err := NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	big := randSigs(rand.New(rand.NewSource(2)), 1, 8, 3)[0]
	big.DocID = string(make([]byte, maxSnapshotString+1))
	if err := long.Add(big); err != nil {
		t.Fatal(err)
	}
	if err := long.WriteSnapshot(&bytes.Buffer{}); err == nil {
		t.Error("oversized doc-id should fail at write time")
	}
	// Same for the model snapshot.
	m := &Model{dim: 8, idf: []float64{0, 1, 0, 2, 0, 0, 0, 0.5}}
	var msnap bytes.Buffer
	if err := WriteModelSnapshot(&msnap, m); err != nil {
		t.Fatal(err)
	}
	mb := msnap.Bytes()
	copy(mb[6:10], []byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadModelSnapshot(bytes.NewReader(mb)); err == nil {
		t.Error("giant model dimension should be rejected")
	}
}
