package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vecmath"
)

// randSigs builds n sparse random signatures of the given dimension.
func randSigs(r *rand.Rand, n, dim, nnz int) []Signature {
	out := make([]Signature, n)
	for i := range out {
		v := vecmath.NewVector(dim)
		for j := 0; j < nnz; j++ {
			v[r.Intn(dim)] = r.Float64()
		}
		out[i] = SignatureFromDense(fmt.Sprintf("d%d", i), fmt.Sprintf("l%d", i%3), v)
	}
	return out
}

// sortTopK is the reference implementation: score everything (through
// the same sparse path the DB uses), stable sort, truncate.
func sortTopK(sigs []Signature, query *vecmath.Sparse, k int, metric Metric) []SearchResult {
	results := make([]SearchResult, 0, len(sigs))
	for _, s := range sigs {
		var score float64
		if metric.SparseScore != nil {
			score = metric.SparseScore(query, s.W)
		} else {
			var err error
			score, err = metric.Score(query.Dense(), s.Dense())
			if err != nil {
				panic(err)
			}
		}
		results = append(results, SearchResult{Signature: s, Score: score})
	}
	sort.SliceStable(results, func(i, j int) bool {
		if metric.HigherIsCloser {
			return results[i].Score > results[j].Score
		}
		return results[i].Score < results[j].Score
	})
	if k > len(results) {
		k = len(results)
	}
	return results[:k]
}

// TestTopKShardedMatchesSort checks the heap + shard-merge machinery
// against the stable-sort reference at several shard and worker counts,
// including duplicate signatures so equal scores exercise the
// insertion-order tie-break across shard boundaries.
func TestTopKShardedMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const dim = 120
	sigs := randSigs(r, 300, dim, 25)
	dup := sigs[42]
	dup.DocID = "dup-of-42"
	sigs = append(sigs, dup)
	dup2 := sigs[7]
	dup2.DocID = "dup-of-7"
	sigs = append(sigs, dup2)
	query := randSigs(r, 1, dim, 25)[0].W

	for _, shards := range []int{1, 2, 3, 7} {
		for _, workers := range []int{-1, 0, 2} {
			db, err := NewShardedDB(dim, shards)
			if err != nil {
				t.Fatal(err)
			}
			db.SetWorkers(workers)
			if err := db.AddAll(sigs); err != nil {
				t.Fatal(err)
			}
			for _, metric := range []Metric{EuclideanMetric(), CosineMetric(), MinkowskiMetric(1), MinkowskiMetric(3)} {
				for _, k := range []int{1, 2, 10, 100, len(sigs), len(sigs) + 5} {
					got, err := db.TopKSparse(query, k, metric)
					if err != nil {
						t.Fatal(err)
					}
					want := sortTopK(sigs, query, k, metric)
					if len(got) != len(want) {
						t.Fatalf("shards=%d %s k=%d: len %d vs %d", shards, metric.Name, k, len(got), len(want))
					}
					for i := range got {
						if got[i].Signature.DocID != want[i].Signature.DocID || got[i].Score != want[i].Score {
							t.Fatalf("shards=%d workers=%d %s k=%d: hit %d = (%s, %v), want (%s, %v)",
								shards, workers, metric.Name, k, i, got[i].Signature.DocID, got[i].Score,
								want[i].Signature.DocID, want[i].Score)
						}
					}
				}
			}
		}
	}
}

// TestTopKDenseQueryMatchesSparseQuery checks that the dense-query entry
// point is a pure wrapper over the sparse path.
func TestTopKDenseQueryMatchesSparseQuery(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const dim = 400
	sigs := randSigs(r, 200, dim, 30)
	db, err := NewShardedDB(dim, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	qd := randSigs(r, 1, dim, 30)[0].Dense()
	for _, metric := range []Metric{CosineMetric(), EuclideanMetric(), MinkowskiMetric(2.5)} {
		d, err := db.TopK(qd, 10, metric)
		if err != nil {
			t.Fatal(err)
		}
		s, err := db.TopKSparse(vecmath.DenseToSparse(qd), 10, metric)
		if err != nil {
			t.Fatal(err)
		}
		for i := range d {
			if d[i].Signature.DocID != s[i].Signature.DocID || d[i].Score != s[i].Score {
				t.Fatalf("%s: hit %d differs: (%s, %v) vs (%s, %v)", metric.Name, i,
					d[i].Signature.DocID, d[i].Score, s[i].Signature.DocID, s[i].Score)
			}
		}
	}
}

// TestTopKDenseFallbackMetric drives a metric with no sparse path through
// the dense-materializing fallback scan.
func TestTopKDenseFallbackMetric(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const dim = 60
	sigs := randSigs(r, 50, dim, 10)
	db, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	custom := Metric{
		Name:           "dot",
		Score:          func(x, y vecmath.Vector) (float64, error) { return x.Dot(y) },
		HigherIsCloser: true,
	}
	query := randSigs(r, 1, dim, 10)[0].W
	got, err := db.TopKSparse(query, 5, custom)
	if err != nil {
		t.Fatal(err)
	}
	want := sortTopK(sigs, query, 5, custom)
	for i := range got {
		if got[i].Signature.DocID != want[i].Signature.DocID {
			t.Fatalf("hit %d = %s, want %s", i, got[i].Signature.DocID, want[i].Signature.DocID)
		}
	}
}

// TestDBTypedErrors pins the typed validation errors: dimension
// mismatches surface as *DimensionError before any scan work, and empty
// databases as ErrEmptyDB.
func TestDBTypedErrors(t *testing.T) {
	db, err := NewShardedDB(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var dimErr *DimensionError
	if _, err := db.TopK(vecmath.Vector{1, 2}, 3, EuclideanMetric()); !errors.As(err, &dimErr) {
		t.Fatalf("TopK wrong-dim error = %v, want *DimensionError", err)
	} else if dimErr.Got != 2 || dimErr.Want != 4 {
		t.Fatalf("DimensionError = %+v", dimErr)
	}
	if _, err := db.TopKSparse(vecmath.DenseToSparse(vecmath.Vector{1}), 1, EuclideanMetric()); !errors.As(err, &dimErr) {
		t.Fatalf("TopKSparse wrong-dim error = %v, want *DimensionError", err)
	}
	if err := db.Add(SignatureFromDense("bad", "", vecmath.Vector{1, 2, 3})); !errors.As(err, &dimErr) {
		t.Fatalf("Add wrong-dim error = %v, want *DimensionError", err)
	}
	if err := db.Add(Signature{DocID: "nil"}); err == nil {
		t.Error("Add with nil weights should fail")
	}
	q := vecmath.Vector{1, 2, 3, 4}
	if _, err := db.TopK(q, 1, EuclideanMetric()); !errors.Is(err, ErrEmptyDB) {
		t.Fatalf("empty-db error = %v, want ErrEmptyDB", err)
	}
	if err := db.AddAll(randSigs(rand.New(rand.NewSource(1)), 3, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.TopK(q, 0, EuclideanMetric()); err == nil {
		t.Error("k=0 should fail")
	}
	// AddAll surfaces the offending signature's typed error.
	bad := []Signature{SignatureFromDense("ok", "", q), SignatureFromDense("short", "", vecmath.Vector{1})}
	if err := db.AddAll(bad); !errors.As(err, &dimErr) {
		t.Fatalf("AddAll error = %v, want *DimensionError", err)
	}
}

// BenchmarkDBTopK pins the bounded-heap scan at paper scale on a single
// shard (the PR-1 baseline shape).
func BenchmarkDBTopK(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz, n, k = 3815, 150, 2000, 10
	sigs := randSigs(r, n, dim, nnz)
	query := randSigs(r, 1, dim, nnz)[0].W
	metric := EuclideanMetric()
	b.Run("sort-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sortTopK(sigs, query, k, metric)
		}
	})
	db, _ := NewDB(dim)
	if err := db.AddAll(sigs); err != nil {
		b.Fatal(err)
	}
	b.Run("heap-sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.TopKSparse(query, k, metric); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDBTopKSharded measures the exhaustive sharded scan at paper
// scale: per-shard bounded heaps merged through the global heap, one
// worker per CPU. The index is disabled — this is the scan baseline the
// indexed benchmarks are compared against.
func BenchmarkDBTopKSharded(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz, n, k = 3815, 150, 2000, 10
	sigs := randSigs(r, n, dim, nnz)
	query := randSigs(r, 1, dim, nnz)[0].W
	metric := EuclideanMetric()
	for _, shards := range []int{1, 4} {
		db, err := NewShardedDB(dim, shards)
		if err != nil {
			b.Fatal(err)
		}
		db.SetIndexed(false)
		if err := db.AddAll(sigs); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.TopKSparse(query, k, metric); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDBTopKIndexed measures inverted-index retrieval on the same
// corpus shape as BenchmarkDBTopKSharded: score accumulation touches
// only the posting lists in the query's ~150-dim support instead of
// merge-walking all 2000 stored signatures.
func BenchmarkDBTopKIndexed(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz, n, k = 3815, 150, 2000, 10
	sigs := randSigs(r, n, dim, nnz)
	query := randSigs(r, 1, dim, nnz)[0].W
	for _, shards := range []int{1, 4} {
		db, err := NewShardedDB(dim, shards)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.AddAll(sigs); err != nil {
			b.Fatal(err)
		}
		for _, metric := range []Metric{EuclideanMetric(), CosineMetric()} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, metric.Name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := db.TopKSparse(query, k, metric); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDBTopKCompressed measures indexed retrieval over sealed
// (block-compressed) segments on the BenchmarkDBTopKIndexed corpus
// shape — the decode-and-gather tax relative to the flat active-segment
// layout, bought with the ~4-5x smaller resident index. Results are
// bit-identical to the flat path.
func BenchmarkDBTopKCompressed(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz, n, k = 3815, 150, 2000, 10
	sigs := randSigs(r, n, dim, nnz)
	query := randSigs(r, 1, dim, nnz)[0].W
	for _, shards := range []int{1, 4} {
		db, err := NewShardedDB(dim, shards)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.AddAll(sigs); err != nil {
			b.Fatal(err)
		}
		flatBytes := db.IndexBytes()
		db.Seal()
		b.Logf("shards=%d: index bytes flat %d -> sealed %d (%.2fx)",
			shards, flatBytes, db.IndexBytes(), float64(flatBytes)/float64(db.IndexBytes()))
		for _, metric := range []Metric{EuclideanMetric(), CosineMetric()} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, metric.Name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := db.TopKSparse(query, k, metric); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestClassifyBatchInto checks the allocation-free labeling entry
// point: labels match ClassifyBatch exactly, the caller-owned slice is
// reused, and validation errors mirror the batch query path.
func TestClassifyBatchInto(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	const dim, n, nnz, k = 120, 150, 15, 5
	db, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(randSigs(r, n, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	queries := make([]*vecmath.Sparse, 12)
	for i := range queries {
		queries[i] = randSigs(r, 1, dim, nnz)[0].W
	}
	for _, workers := range []int{-1, 0, 3} {
		db.SetWorkers(workers)
		want, err := db.ClassifyBatch(queries, k, EuclideanMetric())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(queries))
		if err := db.ClassifyBatchInto(queries, k, EuclideanMetric(), out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("workers=%d: Into[%d] = %q, want %q", workers, i, out[i], want[i])
			}
			if single, err := db.ClassifySparse(queries[i], k, EuclideanMetric()); err != nil || single != want[i] {
				t.Fatalf("workers=%d: ClassifySparse[%d] = %q (%v), want %q", workers, i, single, err, want[i])
			}
		}
	}
	if err := db.ClassifyBatchInto(queries, k, EuclideanMetric(), make([]string, 1)); err == nil {
		t.Fatal("mismatched out length should fail")
	}
	var dimErr *DimensionError
	bad := []*vecmath.Sparse{queries[0], vecmath.DenseToSparse(vecmath.Vector{1})}
	if err := db.ClassifyBatchInto(bad, k, EuclideanMetric(), make([]string, 2)); !errors.As(err, &dimErr) {
		t.Fatalf("wrong-dim error = %v, want *DimensionError", err)
	} else if dimErr.What != "query 1" {
		t.Fatalf("DimensionError = %+v", dimErr)
	}
}

// BenchmarkDBClassifyBatch proves the vote-counting satellite: with
// hits and vote counts in pooled scratch and a caller-owned label
// slice, the sequential steady state of the k-NN labeling path runs at
// 0 allocs/op.
func BenchmarkDBClassifyBatch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz, n, k, batch = 3815, 150, 2000, 10, 64
	sigs := randSigs(r, n, dim, nnz)
	queries := make([]*vecmath.Sparse, batch)
	for i := range queries {
		queries[i] = randSigs(r, 1, dim, nnz)[0].W
	}
	metric := EuclideanMetric()
	db, err := NewShardedDB(dim, 4)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.AddAll(sigs); err != nil {
		b.Fatal(err)
	}
	out := make([]string, len(queries))
	for _, workers := range []int{-1, 0} {
		name := "workers=seq"
		if workers == 0 {
			name = "workers=all"
		}
		db.SetWorkers(workers)
		if err := db.ClassifyBatchInto(queries, k, metric, out); err != nil {
			b.Fatal(err) // warm the scratch pool
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := db.ClassifyBatchInto(queries, k, metric, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	db.SetWorkers(0)
}

// BenchmarkDBTopKBatch measures the batched query path with reused
// result buffers: sequential workers pin the steady-state 0 allocs/op
// contract, parallel workers show the fan-out speedup (allocation there
// is the worker pool's bookkeeping, amortized over the batch).
func BenchmarkDBTopKBatch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz, n, k, batch = 3815, 150, 2000, 10, 64
	sigs := randSigs(r, n, dim, nnz)
	queries := make([]*vecmath.Sparse, batch)
	for i := range queries {
		queries[i] = randSigs(r, 1, dim, nnz)[0].W
	}
	metric := EuclideanMetric()
	db, err := NewShardedDB(dim, 4)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.AddAll(sigs); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{-1, 0} {
		name := "workers=seq"
		if workers == 0 {
			name = "workers=all"
		}
		db.SetWorkers(workers)
		out := make([][]SearchResult, len(queries))
		if err := db.TopKBatchInto(queries, k, metric, out); err != nil {
			b.Fatal(err) // warm the result capacity and scratch pool
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := db.TopKBatchInto(queries, k, metric, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	db.SetWorkers(0)
}
