package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vecmath"
)

// randSigs builds n sparse random signatures of the given dimension.
func randSigs(r *rand.Rand, n, dim, nnz int) []Signature {
	out := make([]Signature, n)
	for i := range out {
		v := vecmath.NewVector(dim)
		for j := 0; j < nnz; j++ {
			v[r.Intn(dim)] = r.Float64()
		}
		out[i] = Signature{DocID: fmt.Sprintf("d%d", i), Label: fmt.Sprintf("l%d", i%3), V: v}
	}
	return out
}

// sortTopK is the reference implementation: score everything, stable sort,
// truncate — exactly what DB.TopK did before the bounded heap.
func sortTopK(sigs []Signature, query vecmath.Vector, k int, metric Metric) []SearchResult {
	results := make([]SearchResult, 0, len(sigs))
	for _, s := range sigs {
		score, err := metric.Score(query, s.V)
		if err != nil {
			panic(err)
		}
		results = append(results, SearchResult{Signature: s, Score: score})
	}
	sort.SliceStable(results, func(i, j int) bool {
		if metric.HigherIsCloser {
			return results[i].Score > results[j].Score
		}
		return results[i].Score < results[j].Score
	})
	if k > len(results) {
		k = len(results)
	}
	return results[:k]
}

func TestTopKHeapMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const dim = 120
	sigs := randSigs(r, 300, dim, 25)
	db, err := NewDB(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []Metric{EuclideanMetric(), CosineMetric(), MinkowskiMetric(1)} {
		for _, k := range []int{1, 5, 17, 300, 999} {
			got, err := db.TopK(randSigs(r, 1, dim, 25)[0].V, k, metric)
			if err != nil {
				t.Fatal(err)
			}
			// Re-query with the same query vector for the reference.
			// (TopK must not mutate the query, so build it once.)
			_ = got
		}
	}
	// Deterministic comparison with a fixed query, including duplicate
	// scores (duplicate signatures) to exercise the stable tie-break.
	dup := sigs[42]
	dup.DocID = "dup-of-42"
	if err := db.Add(dup); err != nil {
		t.Fatal(err)
	}
	query := randSigs(r, 1, dim, 25)[0].V
	all := db.All()
	for _, metric := range []Metric{EuclideanMetric(), CosineMetric(), MinkowskiMetric(1)} {
		for _, k := range []int{1, 2, 10, 100, len(all), len(all) + 5} {
			got, err := db.TopK(query, k, metric)
			if err != nil {
				t.Fatal(err)
			}
			want := sortTopK(all, query, k, metric)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: len %d vs %d", metric.Name, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Signature.DocID != want[i].Signature.DocID || got[i].Score != want[i].Score {
					t.Fatalf("%s k=%d: hit %d = (%s, %v), want (%s, %v)",
						metric.Name, k, i, got[i].Signature.DocID, got[i].Score,
						want[i].Signature.DocID, want[i].Score)
				}
			}
		}
	}
}

func TestTopKSparseAgreesWithDense(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const dim = 400
	sigs := randSigs(r, 200, dim, 30)
	dense, _ := NewDB(dim)
	sparse, _ := NewDB(dim)
	if err := dense.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	sparse.UseSparse(true) // enabled before Add: indexed incrementally
	if err := sparse.AddAll(sigs[:100]); err != nil {
		t.Fatal(err)
	}
	sparse.UseSparse(false)
	sparse.UseSparse(true) // re-enabled on a populated DB: bulk indexed
	if err := sparse.AddAll(sigs[100:]); err != nil {
		t.Fatal(err)
	}
	query := randSigs(r, 1, dim, 30)[0].V
	// Cosine's sparse path is bit-identical, so hits and scores match
	// exactly. Euclidean agrees to float tolerance; ranks may only differ
	// on exact ties, which random data does not produce.
	for _, metric := range []Metric{CosineMetric(), EuclideanMetric()} {
		d, err := dense.TopK(query, 10, metric)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sparse.TopK(query, 10, metric)
		if err != nil {
			t.Fatal(err)
		}
		for i := range d {
			if d[i].Signature.DocID != s[i].Signature.DocID {
				t.Fatalf("%s: hit %d differs: %s vs %s", metric.Name, i, d[i].Signature.DocID, s[i].Signature.DocID)
			}
			if diff := d[i].Score - s[i].Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s: score %d differs: %v vs %v", metric.Name, i, d[i].Score, s[i].Score)
			}
		}
	}
}

// BenchmarkDBTopK proves the satellite claim: bounded-heap top-k is
// O(n log k), and the sparse index cuts per-candidate scoring to O(nnz).
func BenchmarkDBTopK(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz, n, k = 3815, 150, 2000, 10
	sigs := randSigs(r, n, dim, nnz)
	query := randSigs(r, 1, dim, nnz)[0].V
	metric := EuclideanMetric()
	b.Run("sort-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sortTopK(sigs, query, k, metric)
		}
	})
	db, _ := NewDB(dim)
	if err := db.AddAll(sigs); err != nil {
		b.Fatal(err)
	}
	b.Run("heap-dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.TopK(query, k, metric); err != nil {
				b.Fatal(err)
			}
		}
	})
	db.UseSparse(true)
	b.Run("heap-sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.TopK(query, k, metric); err != nil {
				b.Fatal(err)
			}
		}
	})
}
