package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// buildPrunedDB assembles a DB in one of the sweep's storage layouts:
// "sealed" (everything block-compressed), "mixed" (sealed prefix plus a
// flat active tail), "compacted" (tier policy enabled while ingesting,
// so the sealed run is a merge history), or "mapped" (the sealed store
// round-tripped through SaveDir and reloaded with postings served off
// read-only file mappings).
func buildPrunedDB(t *testing.T, sigs []Signature, shards, workers, segSize int, layout string) *DB {
	t.Helper()
	db, err := NewShardedDB(sigs[0].Dim(), shards)
	if err != nil {
		t.Fatal(err)
	}
	// Small fixtures sit under the production shard-size floor; lower it
	// so the sweep actually exercises the pruned walk.
	db.setPruneFloor(1)
	db.SetWorkers(workers)
	db.SetSegmentSize(segSize)
	if layout == "compacted" {
		if err := db.SetCompactionPolicy(CompactionPolicy{TierFanout: 2}); err != nil {
			t.Fatal(err)
		}
	}
	cut := len(sigs)
	if layout == "mixed" {
		cut = len(sigs) * 3 / 4
	}
	if err := db.AddAll(sigs[:cut]); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	if err := db.AddAll(sigs[cut:]); err != nil {
		t.Fatal(err)
	}
	if layout == "mapped" {
		dir := t.TempDir()
		if err := db.SaveDir(dir); err != nil {
			t.Fatal(err)
		}
		mdb, err := LoadDirMapped(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mdb.Close() })
		mdb.setPruneFloor(1)
		mdb.SetWorkers(workers)
		return mdb
	}
	return db
}

// requireSameHits asserts bit-identical retrieval results (same DocIDs,
// float-equal scores, same order).
func requireSameHits(t *testing.T, ctx string, got, want []SearchResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].Signature.DocID != want[i].Signature.DocID || got[i].Score != want[i].Score {
			t.Fatalf("%s: hit %d = (%s, %v), want (%s, %v)",
				ctx, i, got[i].Signature.DocID, got[i].Score, want[i].Signature.DocID, want[i].Score)
		}
	}
}

// TestPrunedTopKMatchesScan is the exact-mode property sweep: across
// seeds, shard counts, worker counts, storage layouts, and both
// indexable metrics, the threshold-pruned TopK/TopKBatch/Classify must
// be bit-identical to the unpruned exhaustive scan. Duplicate
// signatures force equal scores through the insertion-order tie-break,
// the adversarial case for any bound-based skip.
func TestPrunedTopKMatchesScan(t *testing.T) {
	const dim, nnz, n, segSize = 150, 18, 400, 48
	metrics := []Metric{CosineMetric(), EuclideanMetric()}
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		sigs := randSigs(r, n, dim, nnz)
		dup := sigs[11]
		dup.DocID = "dup-11"
		sigs = append(sigs, dup)
		queries := make([]*vecmath.Sparse, 4)
		for qi := range queries {
			queries[qi] = randSigs(r, 1, dim, nnz)[0].W
		}
		// One query probes far outside the corpus distribution so heaps
		// fill with poor scores (weak thresholds, little pruning).
		queries[3] = sigs[0].W

		// Scan reference: single shard, index and pruning off.
		ref, err := NewDB(dim)
		if err != nil {
			t.Fatal(err)
		}
		ref.SetIndexed(false)
		if err := ref.AddAll(sigs); err != nil {
			t.Fatal(err)
		}

		for _, metric := range metrics {
			for _, k := range []int{1, 7, 40} {
				want := make([][]SearchResult, len(queries))
				wantLabel := make([]string, len(queries))
				for qi, q := range queries {
					if want[qi], err = ref.TopKSparse(q, k, metric); err != nil {
						t.Fatal(err)
					}
					if wantLabel[qi], err = ref.ClassifySparse(q, k, metric); err != nil {
						t.Fatal(err)
					}
				}
				for _, shards := range []int{1, 3, 4} {
					for _, workers := range []int{1, 4} {
						for _, layout := range []string{"sealed", "mixed", "compacted", "mapped"} {
							ctx := fmt.Sprintf("seed=%d metric=%s k=%d shards=%d workers=%d layout=%s",
								seed, metric.Name, k, shards, workers, layout)
							db := buildPrunedDB(t, sigs, shards, workers, segSize, layout)
							for qi, q := range queries {
								got, err := db.TopKSparse(q, k, metric)
								if err != nil {
									t.Fatal(err)
								}
								requireSameHits(t, ctx+" TopKSparse", got, want[qi])
							}
							batch, err := db.TopKBatch(queries, k, metric)
							if err != nil {
								t.Fatal(err)
							}
							for qi := range queries {
								requireSameHits(t, ctx+" TopKBatch", batch[qi], want[qi])
							}
							labels, err := db.ClassifyBatch(queries, k, metric)
							if err != nil {
								t.Fatal(err)
							}
							for qi := range queries {
								if labels[qi] != wantLabel[qi] {
									t.Fatalf("%s: ClassifyBatch[%d] = %q, want %q", ctx, qi, labels[qi], wantLabel[qi])
								}
							}
						}
					}
				}
			}
		}
	}
}

// clusterSigs builds batch-clustered signatures in the regime the
// pruned walk targets (and real tf-idf signatures live in): each
// workload class owns a few high-weight dims, every signature shares a
// pool of low-weight common dims, and classes arrive in contiguous
// batches.
func clusterSigs(r *rand.Rand, n, dim, classSize int) []Signature {
	const classDims, commonPool = 12, 30
	out := make([]Signature, n)
	for i := range out {
		class := i / classSize
		cr := rand.New(rand.NewSource(999983*int64(class) + 7))
		v := vecmath.NewVector(dim)
		for j := 0; j < classDims; j++ {
			v[commonPool+cr.Intn(dim-commonPool)] = 0.5 + 0.5*r.Float64()
		}
		for d := 0; d < commonPool; d++ {
			if r.Float64() < 0.7 {
				v[d] = 0.02 + 0.04*r.Float64()
			}
		}
		out[i] = SignatureFromDense(fmt.Sprintf("d%d", i), fmt.Sprintf("c%d", class), v)
	}
	return out
}

// TestPruneStatsCounters checks that the pruned walk actually skips
// work on a sealed store and that the counters expose it coherently —
// while the results stay identical to the unpruned indexed walk. The
// corpus is batch-clustered (clusterSigs): on shapeless uniform data
// the walk's profitability check correctly falls back to the plain
// kernels, so this is the corpus where the counters must light up.
func TestPruneStatsCounters(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sigs := clusterSigs(r, 3000, 200, 250)
	for _, metric := range []Metric{CosineMetric(), EuclideanMetric()} {
		db, err := NewShardedDB(200, 2)
		if err != nil {
			t.Fatal(err)
		}
		db.SetSegmentSize(256)
		if err := db.AddAll(sigs); err != nil {
			t.Fatal(err)
		}
		db.Seal()
		q := sigs[1234].W // a class-4 member: its class postings dominate
		hits, st, err := db.TopKSparseStats(q, 5, metric)
		if err != nil {
			t.Fatal(err)
		}
		if st.Segments == 0 || st.SegmentsPruned == 0 {
			t.Fatalf("%s: no pruned segments: %+v", metric.Name, st)
		}
		if st.BlocksSkipped == 0 && st.DimsSkipped == 0 {
			t.Fatalf("%s: pruning fired but skipped nothing: %+v", metric.Name, st)
		}
		if st.CandidatesScored >= st.Candidates {
			t.Fatalf("%s: rescored %d of %d covered candidates — no saving", metric.Name, st.CandidatesScored, st.Candidates)
		}
		db.SetPruned(false)
		want, err := db.TopKSparse(q, 5, metric)
		if err != nil {
			t.Fatal(err)
		}
		requireSameHits(t, metric.Name+" pruned vs unpruned", hits, want)
		if _, st2, err := db.TopKSparseStats(q, 5, metric); err != nil {
			t.Fatal(err)
		} else if st2.SegmentsPruned != 0 {
			t.Fatalf("%s: SetPruned(false) still pruned: %+v", metric.Name, st2)
		}
		db.SetPruned(true)
		if label, st3, err := db.ClassifySparseStats(q, 5, metric); err != nil {
			t.Fatal(err)
		} else {
			if st3.SegmentsPruned == 0 {
				t.Fatalf("%s: classify path reported no pruning: %+v", metric.Name, st3)
			}
			wantLabel, err := db.ClassifySparse(q, 5, metric)
			if err != nil {
				t.Fatal(err)
			}
			if label != wantLabel {
				t.Fatalf("%s: ClassifySparseStats label %q, want %q", metric.Name, label, wantLabel)
			}
		}
	}
}

// TestPruneThetaRecall pins the approximate mode: theta < 1 may drop
// true neighbors, but recall@k against the exact result must stay above
// a floor, and theta outside (0, 1] must clamp back to exact.
func TestPruneThetaRecall(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sigs := randSigs(r, 2000, 200, 20)
	db, err := NewShardedDB(200, 2)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(256)
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	const k, nq = 10, 20
	for _, metric := range []Metric{CosineMetric(), EuclideanMetric()} {
		overlap, total := 0, 0
		for qi := 0; qi < nq; qi++ {
			q := randSigs(r, 1, 200, 20)[0].W
			db.SetPruneTheta(1)
			exact, err := db.TopKSparse(q, k, metric)
			if err != nil {
				t.Fatal(err)
			}
			db.SetPruneTheta(0.5)
			approx, err := db.TopKSparse(q, k, metric)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]bool, len(approx))
			for _, h := range approx {
				got[h.Signature.DocID] = true
			}
			for _, h := range exact {
				total++
				if got[h.Signature.DocID] {
					overlap++
				}
			}
		}
		recall := float64(overlap) / float64(total)
		if recall < 0.5 {
			t.Fatalf("%s: recall@%d = %.3f below floor 0.5", metric.Name, k, recall)
		}
		t.Logf("%s: theta=0.5 recall@%d = %.3f", metric.Name, k, recall)
	}
	db.SetPruneTheta(0)
	if got := db.PruneTheta(); got != 1 {
		t.Fatalf("PruneTheta after SetPruneTheta(0) = %v, want clamp to 1", got)
	}
	db.SetPruneTheta(1.7)
	if got := db.PruneTheta(); got != 1 {
		t.Fatalf("PruneTheta after SetPruneTheta(1.7) = %v, want clamp to 1", got)
	}
	db.SetPruneTheta(math.NaN())
	if got := db.PruneTheta(); got != 1 {
		t.Fatalf("PruneTheta after SetPruneTheta(NaN) = %v, want clamp to 1", got)
	}
}

// TestCompactionPolicyBoundsSegments drives continuous ingestion
// through the tier policy and asserts the sealed-segment count stays
// within the tier budget at every point of the stream — while retrieval
// remains bit-identical to an unpolicied store.
func TestCompactionPolicyBoundsSegments(t *testing.T) {
	const dim, nnz, n, segSize, fanout = 120, 12, 6000, 32, 3
	r := rand.New(rand.NewSource(9))
	sigs := randSigs(r, n, dim, nnz)
	db, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(segSize)
	if err := db.SetCompactionPolicy(CompactionPolicy{TierFanout: fanout}); err != nil {
		t.Fatal(err)
	}
	plain, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain.SetSegmentSize(segSize)

	budget := func(perShard int) int {
		// After policyCompact, every adjacent same-tier run holds fewer
		// than F segments; tiers range up to log_F(perShard/segSize)+1.
		tiers := 2
		for bound := segSize * fanout; bound <= perShard; bound *= fanout {
			tiers++
		}
		return (fanout - 1) * tiers
	}
	query := randSigs(r, 1, dim, nnz)[0].W
	for i, s := range sigs {
		if err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		if err := plain.Add(s); err != nil {
			t.Fatal(err)
		}
		if (i+1)%500 == 0 || i == len(sigs)-1 {
			perShard := (i + 1 + 1) / 2
			for si := 0; si < 2; si++ {
				sealed := 0
				for _, sg := range db.shards[si].segs {
					if sg.sealed {
						sealed++
					}
				}
				if max := budget(perShard); sealed > max {
					t.Fatalf("after %d adds: shard %d holds %d sealed segments, budget %d", i+1, si, sealed, max)
				}
			}
			got, err := db.TopKSparse(query, 10, EuclideanMetric())
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.TopKSparse(query, 10, EuclideanMetric())
			if err != nil {
				t.Fatal(err)
			}
			requireSameHits(t, fmt.Sprintf("after %d adds", i+1), got, want)
		}
	}
	if db.Segments() >= plain.Segments() {
		t.Fatalf("policy store holds %d segments, unpolicied %d — policy never merged", db.Segments(), plain.Segments())
	}
}

// TestConfigErrors pins the typed validation of the construction and
// configuration knobs.
func TestConfigErrors(t *testing.T) {
	var ce *ConfigError
	if _, err := NewShardedDB(0, 1); !errors.As(err, &ce) || ce.Param != "dimension" || ce.Value != 0 {
		t.Fatalf("NewShardedDB(0, 1) = %v, want dimension ConfigError", err)
	}
	if _, err := NewShardedDB(5, 0); !errors.As(err, &ce) || ce.Param != "shard count" || ce.Value != 0 {
		t.Fatalf("NewShardedDB(5, 0) = %v, want shard-count ConfigError", err)
	}
	if _, err := NewShardedDB(5, -3); !errors.As(err, &ce) || ce.Value != -3 {
		t.Fatalf("NewShardedDB(5, -3) = %v, want shard-count ConfigError", err)
	}
	if _, err := NewIndex(0); !errors.As(err, &ce) || ce.Param != "index dimension" {
		t.Fatalf("NewIndex(0) = %v, want index-dimension ConfigError", err)
	}

	db, err := NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{0, -5} {
		db.SetSegmentSize(bad)
		if got := db.SegmentSize(); got != DefaultSegmentSize {
			t.Fatalf("SegmentSize after SetSegmentSize(%d) = %d, want clamp to %d", bad, got, DefaultSegmentSize)
		}
	}
	db.SetSegmentSize(7)
	if got := db.SegmentSize(); got != 7 {
		t.Fatalf("SegmentSize = %d, want 7", got)
	}

	for _, bad := range []int{1, -2} {
		if err := db.SetCompactionPolicy(CompactionPolicy{TierFanout: bad}); !errors.As(err, &ce) || ce.Value != bad {
			t.Fatalf("SetCompactionPolicy(%d) = %v, want ConfigError", bad, err)
		}
	}
	if err := db.SetCompactionPolicy(CompactionPolicy{TierFanout: 4}); err != nil {
		t.Fatalf("SetCompactionPolicy(4) = %v", err)
	}
	if got := db.CompactionPolicy().TierFanout; got != 4 {
		t.Fatalf("CompactionPolicy().TierFanout = %d, want 4", got)
	}
	if err := db.SetCompactionPolicy(CompactionPolicy{}); err != nil {
		t.Fatalf("SetCompactionPolicy(zero) = %v, want disabled ok", err)
	}
}
