package core

import (
	"math"
	"sort"

	"repro/internal/vecmath"
)

// Threshold-pruned retrieval (maxscore/WAND family) over the
// block-compressed posting layout. The unpruned indexed walk decodes
// every block whose dimension appears in the query — O(corpus) work per
// query no matter how selective the query is. The pruned walk uses the
// bounds PR 5's descriptors already pay for (per-block maxAbsW, lifted
// to a per-dim directory bound at seal time) to spend work only where
// the top-k outcome can still change:
//
//  1. The query dims present in the segment are ranked by worst-case
//     contribution |q_d|·dimBound[d] and suffix-summed in that order.
//     Once the heap is full, the first suffix whose remaining mass
//     provably cannot lift any untouched candidate past the heap root
//     splits the dims into an essential prefix and a skippable tail.
//  2. Essential dims accumulate as usual (ascending dim order, tracking
//     which candidates were touched); inside them, an individual block
//     is skipped when even adding its |q_d|·maxAbsW to every remaining
//     bound cannot change the outcome (block-max pruning).
//  3. Touched candidates whose partial dot plus the remaining bound
//     cannot displace the root are dropped; the survivors are rescored
//     with the canonical merge-walk dot (Sparse.Dot) — the exact float
//     sequence the scan path computes — and offered normally. Untouched
//     candidates are covered wholesale by step 1's bound.
//
// Bound arithmetic only ever *filters*; every score that reaches the
// heap is the canonical one, so exact mode (theta == 1) is bit-identical
// to the scan at any segment layout, shard count, or worker count — see
// DESIGN-PERF.md Layer 7 for the full exactness argument, including why
// pruneEps absorbs the float non-associativity between the bound sums
// and the canonical dot. theta < 1 shrinks the remainder bounds before
// comparison (opt-in approximate mode): blocks and candidates whose
// possible contribution is small relative to the threshold get dropped
// early, trading a bounded recall loss for speed.
//
// The walk prunes against the shard heap's root, so it only engages
// once the heap is full; topkShard seeds the heap with a strided
// sample of min(k, len) shard candidates (scored canonically) before
// the segment walk, which makes the very first — often the largest,
// post-compaction — segment prunable too, with a threshold that is
// already near its final value for batch-clustered corpora.

// pruneTailSlack tightens the skippable-tail budget: after the cutoff
// proves a suffix skippable, the essential prefix keeps growing until
// the remaining tail mass is below 1/pruneTailSlack of the displacement
// threshold, and individually skipped blocks are held to the same
// budget. Skipping is sound at any budget (a skipped mass is always a
// provable non-displacer); the slack exists for the *rescoring* filter:
// every touched candidate is pre-filtered against its partial dot plus
// the total skipped mass, so a tail that is barely below the threshold
// would let nearly every candidate through to a full merge-walk dot —
// the filter only bites when the skipped mass is small relative to the
// threshold. Accumulating a few more cheap posting blocks to keep the
// tail tiny is the difference between rescoring ~k candidates and
// rescoring the whole segment.
const pruneTailSlack = 16

// pruneMinRows is the default shard-size floor below which the pruned
// walk is not attempted: seeding the heap costs up to k strided
// canonical dots plus probeBlocks decoded blocks of canonical dots, so
// on a shard with fewer rows than that the seed pass alone costs more
// than the plain walk it is meant to undercut (a 100-signature sealed
// store measured ~4× slower pruned than plain). Pruning exists for the
// large-corpus regime; tiny shards take the plain sealed walk, whose
// results are bit-identical anyway. Tests lower db.pruneFloor to keep
// the equivalence sweeps exercising the pruned path on small fixtures.
const pruneMinRows = 512

// pruneRowFloorLocked returns the active shard-size floor
// (db.pruneFloor, defaulting to pruneMinRows when unset). Caller holds
// db.mu; queries read the value frozen into their view.
func (db *DB) pruneRowFloorLocked() int {
	if db.pruneFloor != 0 {
		return db.pruneFloor
	}
	return pruneMinRows
}

// setPruneFloor overrides the shard-size floor below which pruning is
// not attempted (0 restores pruneMinRows) — a test knob, published like
// every other query-configuration change.
func (db *DB) setPruneFloor(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pruneFloor = n
	db.publishLocked()
}

// pruneEps is the relative slack added to every remainder bound before
// it is compared against the heap root. The bound sums (suffix sums of
// per-dim bounds, partial dots) and the canonical rescoring dot
// accumulate the same magnitudes in different orders, so they can
// disagree by a few ULPs per term — bounded by ~n·2^-53 relative to the
// summed magnitudes, which is below 1e-10 for any realistic support
// size (even 10^5 terms). 1e-9 of slack keeps every filter decision on
// the safe (looser) side; slack only ever admits extra candidates to
// the exact rescoring, never drops one.
const pruneEps = 1e-9

// pruneScratch is the per-shard working state of the pruned walk; like
// the accumulator it is pooled per worker, so steady-state queries do
// not allocate.
type pruneScratch struct {
	// slots/bound: query-support positions with postings in this segment
	// (ascending dim order) and their impact bounds |q_d|·dimBound[d].
	slots []int32
	bound []float64
	// ord permutes slots into descending impact order; suffix[i] is the
	// impact mass of ord[i:] (suffix[len] == 0).
	ord    []int32
	suffix []float64
	// ess marks the essential slots (the descending-impact prefix that
	// must be accumulated).
	ess []bool
	// touched/stamp/epoch track which segment-local candidates received
	// at least one posting, so rescoring visits exactly those.
	touched []int32
	stamp   []uint32
	epoch   uint32
	sorter  impactSorter
	// seeds holds the shard rows offered by the seed passes (ascending),
	// which every later offer loop must exclude. seedsTmp is the merge
	// buffer probeSeed splices its run into.
	seeds    []int32
	seedsTmp []int32
}

// impactSorter orders ord by descending impact bound, ties toward the
// lower slot — a total order, so the essential prefix is deterministic.
// It is a stored sort.Interface so sorting allocates nothing.
type impactSorter struct {
	ord   []int32
	bound []float64
}

func (s *impactSorter) Len() int { return len(s.ord) }
func (s *impactSorter) Less(a, b int) bool {
	x, y := s.bound[s.ord[a]], s.bound[s.ord[b]]
	if x != y {
		return x > y
	}
	return s.ord[a] < s.ord[b]
}
func (s *impactSorter) Swap(a, b int) { s.ord[a], s.ord[b] = s.ord[b], s.ord[a] }

// SetPruned routes indexed queries through the threshold-pruned walk
// (the default) or forces the plain accumulate-everything indexed walk,
// for A/B comparison; exact-mode results are bit-identical either way.
// In-flight queries keep the setting they pinned.
func (db *DB) SetPruned(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.noPrune = !on
	db.publishLocked()
}

// Pruned reports whether indexed queries use the threshold-pruned walk.
func (db *DB) Pruned() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return !db.noPrune
}

// SetPruneTheta sets the approximate-mode relaxation: remainder bounds
// are scaled by theta before being compared against the heap root.
// theta == 1 (the default) is exact; theta in (0, 1) prunes more
// aggressively with a bounded recall loss. Values outside (0, 1] are
// clamped to 1. In-flight queries keep the setting they pinned.
func (db *DB) SetPruneTheta(theta float64) {
	if !(theta > 0 && theta <= 1) {
		theta = 1
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pruneTheta = theta
	db.publishLocked()
}

// PruneTheta returns the active approximate-mode relaxation (1 = exact).
func (db *DB) PruneTheta() float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pruneThetaLocked()
}

// pruneThetaLocked is PruneTheta for callers already holding db.mu.
func (db *DB) pruneThetaLocked() float64 {
	if db.pruneTheta == 0 {
		return 1
	}
	return db.pruneTheta
}

// seedHeap offers min(k, len) candidates sampled at a fixed stride
// across the whole shard to the heap with their canonical scores,
// recording the sampled rows (ascending) in ps.seeds so every later
// offer loop can exclude them — no candidate is offered twice. It
// exists so the pruned walk has a full heap — a displacement threshold
// — before the very first segment; striding the sample (rather than
// taking the leading rows) matters because real corpora arrive in
// workload batches, so a spread sample almost always contains a few
// same-class near neighbors of the query and the threshold starts near
// its final value. The sample depends only on the shard length, never
// on the segment layout, and the seeds are scored canonically — the
// kept set stays layout-independent and bit-identical.
func seedHeap(vs *viewShard, ps *pruneScratch, h *topkHeap, k int, query *vecmath.Sparse, metric Metric, qNorm2 float64) []int32 {
	n := len(vs.sigs)
	warm := k
	if warm > n {
		warm = n
	}
	ps.seeds = ps.seeds[:0]
	cosine := metric.kind == metricKindCosine
	for i := 0; i < warm; i++ {
		j := i * n / warm
		ps.seeds = append(ps.seeds, int32(j))
		dot := query.Dot(vs.sigs[j].W)
		var score float64
		if cosine {
			score = cosineDotScore(dot, qNorm2, vs.norms[j])
		} else {
			score = euclideanDotScore(dot, qNorm2, vs.norms[j])
		}
		h.offer(k, vs.gids[j], score)
	}
	return ps.seeds
}

// probeBlocks bounds how many posting blocks probeSeed decodes.
const probeBlocks = 2

// probeSeed sharpens the seed threshold with a query-adaptive sample:
// the strided sample bounds the threshold by chance (k spread draws
// rarely include near neighbors when the query's workload class is a
// sliver of the corpus), so this pass finds the single highest-impact
// posting list for the query across the shard's sealed segments —
// max |q_d|·dimBound[d], the list a near neighbor is most likely to
// sit in — decodes its first blocks, and offers those candidates
// canonically. For batch-clustered signatures that list belongs to the
// query's own class, so the heap root starts near its final value and
// even the largest segment prunes on first contact. Seed choice cannot
// affect results — every candidate is scored canonically and offered
// exactly once, and the heap's (score, index) total order makes the
// kept set walk-order-independent — so probing is a pure threshold
// accelerator. Returns the updated (sorted) seed list.
func probeSeed(vs *viewShard, ps *pruneScratch, h *topkHeap, k int, query *vecmath.Sparse, metric Metric, qNorm2 float64) []int32 {
	idx, val := query.Support(), query.Values()
	var bestSeg viewSegment
	bestDim, best := -1, 0.0
	for _, sg := range vs.segs {
		if sg.blocks == nil {
			continue
		}
		bp := sg.blocks
		for s, d := range idx {
			if bp.dir[d] == bp.dir[d+1] {
				continue
			}
			if imp := math.Abs(val[s]) * bp.dimBound[d]; imp > best {
				best, bestSeg, bestDim = imp, sg, int(d)
			}
		}
	}
	if bestSeg.blocks == nil {
		return ps.seeds
	}
	base := len(ps.seeds) // the sorted strided run
	bp := bestSeg.blocks
	cosine := metric.kind == metricKindCosine
	var sc postingScratch
	lo, hi := bp.dir[bestDim], bp.dir[bestDim+1]
	if hi-lo > probeBlocks {
		hi = lo + probeBlocks
	}
	for bi := lo; bi < hi; bi++ {
		ids, _ := bp.decodeBlock(&bp.blocks[bi], &sc)
		for _, id := range ids {
			j := bestSeg.start + int(id)
			if seedContains(ps.seeds[:base], int32(j)) {
				continue
			}
			ps.seeds = append(ps.seeds, int32(j))
			dot := query.Dot(vs.sigs[j].W)
			var score float64
			if cosine {
				score = cosineDotScore(dot, qNorm2, vs.norms[j])
			} else {
				score = euclideanDotScore(dot, qNorm2, vs.norms[j])
			}
			h.offer(k, vs.gids[j], score)
		}
	}
	if len(ps.seeds) == base {
		return ps.seeds
	}
	// Merge the two sorted runs (strided, probe) so exclusion stays a
	// single ascending cursor; the runs are disjoint by the contains
	// check above. The old backing array becomes the next merge buffer.
	a, b := ps.seeds[:base], ps.seeds[base:]
	if cap(ps.seedsTmp) < len(ps.seeds) {
		ps.seedsTmp = make([]int32, 0, 2*len(ps.seeds))
	}
	out := ps.seedsTmp[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	ps.seedsTmp = ps.seeds[:0]
	ps.seeds = out
	return ps.seeds
}

// seedContains reports whether the sorted seed list holds shard row j.
func seedContains(seeds []int32, j int32) bool {
	lo, hi := 0, len(seeds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seeds[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(seeds) && seeds[lo] == j
}

// prunedSegment runs the threshold-pruned walk over one sealed segment,
// offering every candidate that could still belong to the top k. It
// reports false — leaving the heap untouched — when no dim can be
// proven skippable, in which case the caller runs the plain indexed
// walk (the bounds would all be checked and none would fire, so the
// plain fused kernels are strictly faster). seeds holds the shard rows
// already offered by seedHeap (ascending); the caller guarantees the
// heap is full.
func prunedSegment(vs *viewShard, sg viewSegment, ss *shardScratch, h *topkHeap, k int, query *vecmath.Sparse, metric Metric, qNorm2, theta float64, seeds []int32) bool {
	bp := sg.blocks
	ps := &ss.prune
	idx, val := query.Support(), query.Values()
	cosine := metric.kind == metricKindCosine

	// Impact bounds of the query dims present in this segment.
	ps.slots, ps.bound, ps.ord = ps.slots[:0], ps.bound[:0], ps.ord[:0]
	totalBlk := 0
	for s, d := range idx {
		lo, hi := bp.dir[d], bp.dir[d+1]
		if lo == hi {
			continue
		}
		ps.ord = append(ps.ord, int32(len(ps.slots)))
		ps.slots = append(ps.slots, int32(s))
		ps.bound = append(ps.bound, math.Abs(val[s])*bp.dimBound[d])
		totalBlk += int(hi - lo)
	}
	m := len(ps.slots)
	ss.stats.DimsConsidered += int64(m)
	ss.stats.BlocksConsidered += int64(totalBlk)

	// Descending-impact order and suffix mass.
	ps.sorter.ord, ps.sorter.bound = ps.ord, ps.bound
	sort.Sort(&ps.sorter)
	if cap(ps.suffix) < m+1 {
		ps.suffix = make([]float64, m+1)
	}
	ps.suffix = ps.suffix[:m+1]
	ps.suffix[m] = 0
	for i := m - 1; i >= 0; i-- {
		ps.suffix[i] = ps.suffix[i+1] + ps.bound[ps.ord[i]]
	}

	// canSkip reports whether NO candidate whose unaccumulated dot mass
	// is at most rem can displace the heap root: the dot bound becomes a
	// score bound through the norm that maximizes the score, and only a
	// strictly-worse bound is conclusive (an equal score could still
	// displace through the smaller-gid tie-break). The heap root is read
	// live, but no offer happens until rescoring, after every canSkip
	// decision — the threshold is constant while bounds are evaluated.
	canSkip := func(rem float64) bool {
		if cosine {
			return cosineDotScore(rem, qNorm2, bp.minPosNorm2) < h.score[0]
		}
		return euclideanDotScore(rem, qNorm2, bp.minNorm2) > h.score[0]
	}

	// Essential cutoff: the first suffix (the whole support included, at
	// i == m, covering candidates with no query overlap at all) whose
	// mass cannot displace the root. No such suffix means nothing in
	// this segment is provably skippable.
	cut := -1
	for i := 0; i <= m; i++ {
		if canSkip(theta * ps.suffix[i] * (1 + pruneEps)) {
			cut = i
			break
		}
	}
	if cut < 0 {
		return false
	}
	// A zero cut covers the whole segment — nothing to accumulate.
	// Otherwise extend the essential prefix until the tail is far below
	// the threshold (see pruneTailSlack), so the rescoring filter is
	// tight enough to keep full-dot rescores near k — then bail to the
	// plain walk unless the skippable tail covers a meaningful share of
	// the segment's posting blocks: the touch-tracked kernel is slower
	// per posting than the fused one, so a walk that decodes nearly
	// everything anyway should decode it the fast way.
	if cut > 0 {
		for cut < m && !canSkip(theta*ps.suffix[cut]*pruneTailSlack*(1+pruneEps)) {
			cut++
		}
		tailBlk := 0
		for i := cut; i < m; i++ {
			d := idx[ps.slots[ps.ord[i]]]
			tailBlk += int(bp.dir[d+1] - bp.dir[d])
		}
		if 4*tailBlk < totalBlk {
			return false
		}
	}
	ss.stats.SegmentsPruned++
	ss.stats.Candidates += int64(bp.n)
	ss.stats.DimsSkipped += int64(m - cut)

	if cap(ps.ess) < m {
		ps.ess = make([]bool, m)
	}
	ps.ess = ps.ess[:m]
	for i := range ps.ess {
		ps.ess[i] = false
	}
	for i := 0; i < cut; i++ {
		ps.ess[ps.ord[i]] = true
	}

	// Touch-tracked accumulation over the essential dims, in ascending
	// dim order (slots were built ascending). skipped accumulates the
	// impact bounds of individually skipped blocks: a candidate sits in
	// at most one block per dim, so its unaccumulated mass is bounded by
	// the skippable-tail suffix plus the skipped-block total.
	acc := &ss.acc
	acc.Reset(bp.n)
	if cap(ps.stamp) < bp.n {
		ps.stamp = make([]uint32, bp.n)
		ps.epoch = 0
	}
	ps.stamp = ps.stamp[:bp.n]
	ps.epoch++
	if ps.epoch == 0 {
		// Epoch wrap: clear the full capacity so pre-wrap stamps cannot
		// alias the fresh epoch (same discipline as the accumulator).
		full := ps.stamp[:cap(ps.stamp)]
		for i := range full {
			full[i] = 0
		}
		ps.epoch = 1
	}
	ps.touched = ps.touched[:0]
	skipped := 0.0
	for p := 0; p < m; p++ {
		s := ps.slots[p]
		d := idx[s]
		if !ps.ess[p] {
			ss.stats.BlocksSkipped += int64(bp.dir[d+1] - bp.dir[d])
			continue
		}
		qv := val[s]
		aq := math.Abs(qv)
		for bi := bp.dir[d]; bi < bp.dir[d+1]; bi++ {
			bd := &bp.blocks[bi]
			if bd.maxAbsW == 0 {
				ss.stats.BlocksSkipped++
				continue
			}
			if bb := aq * bd.maxAbsW; canSkip(theta * (ps.suffix[cut] + skipped + bb) * pruneTailSlack * (1 + pruneEps)) {
				skipped += bb
				ss.stats.BlocksSkipped++
				continue
			}
			bp.accumBlockTouch(qv, bd, acc, ps)
		}
	}

	// Rescore the touched candidates: drop those whose partial dot plus
	// the remainder bound cannot displace the root (the same predicate
	// offer would decide with, against a bound that dominates the exact
	// score), then offer the survivors' canonical scores. The extra
	// pruneEps·suffix[0] absorbs the float drift between the essential
	// partial sums and the canonical merge-walk dot. Untouched
	// candidates were covered wholesale by the cutoff/block checks.
	rem := theta*(ps.suffix[cut]+skipped)*(1+pruneEps) + pruneEps*(ps.suffix[0]+skipped)
	rs, ri := h.score[0], h.idx[0]
	for _, id := range ps.touched {
		j := sg.start + int(id)
		gid := vs.gids[j]
		ub := acc.Get(int(id)) + rem
		var score float64
		if cosine {
			if b := cosineDotScore(ub, qNorm2, vs.norms[j]); b < rs || (b == rs && gid > ri) {
				continue
			}
			if seedContains(seeds, int32(j)) {
				continue // already offered canonically by seedHeap
			}
			ss.stats.CandidatesScored++
			score = cosineDotScore(query.Dot(vs.sigs[j].W), qNorm2, vs.norms[j])
			if score < rs || (score == rs && gid > ri) {
				continue
			}
		} else {
			if b := euclideanDotScore(ub, qNorm2, vs.norms[j]); b > rs || (b == rs && gid > ri) {
				continue
			}
			if seedContains(seeds, int32(j)) {
				continue // already offered canonically by seedHeap
			}
			ss.stats.CandidatesScored++
			score = euclideanDotScore(query.Dot(vs.sigs[j].W), qNorm2, vs.norms[j])
			if score > rs || (score == rs && gid > ri) {
				continue
			}
		}
		h.offer(k, gid, score)
		rs, ri = h.score[0], h.idx[0]
	}
	return true
}

// accumBlockTouch is the pruned walk's block kernel: decodeBlock into
// the scratch, accumulate, and record first touches so rescoring can
// enumerate exactly the candidates with a nonzero partial sum.
func (bp *blockPostings) accumBlockTouch(qv float64, bd *blockDesc, acc *vecmath.Accumulator, ps *pruneScratch) {
	var sc postingScratch
	ids, ws := bp.decodeBlock(bd, &sc)
	for k, id := range ids {
		acc.Add(id, qv*ws[k])
		if ps.stamp[id] != ps.epoch {
			ps.stamp[id] = ps.epoch
			ps.touched = append(ps.touched, id)
		}
	}
}
