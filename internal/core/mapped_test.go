package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vecmath"
)

// saveSealedCorpus builds a sealed sharded store from sigs and persists
// it to a fresh temp directory, returning the directory.
func saveSealedCorpus(t *testing.T, sigs []Signature, shards int) string {
	t.Helper()
	db, err := NewShardedDB(sigs[0].Dim(), shards)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(64)
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	dir := t.TempDir()
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestMappedLoadMatchesResident pins the core mapped-mode contract:
// LoadDirMapped serves the exact same results as LoadDir for both
// metrics, the posting blobs live in the mapping rather than the heap,
// and the heap+mapped split sums to the resident footprint.
func TestMappedLoadMatchesResident(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	sigs := randSigs(r, 300, 120, 12)
	dir := saveSealedCorpus(t, sigs, 3)

	res, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	if mapped.Len() != res.Len() {
		t.Fatalf("mapped Len = %d, resident = %d", mapped.Len(), res.Len())
	}
	if res.MappedBytes() != 0 {
		t.Fatalf("resident MappedBytes = %d, want 0", res.MappedBytes())
	}
	if got := mapped.MappedBytes(); got <= 0 {
		t.Fatalf("mapped MappedBytes = %d, want > 0", got)
	}
	if mapped.IndexBytes() >= res.IndexBytes() {
		t.Fatalf("mapped heap IndexBytes %d not below resident %d",
			mapped.IndexBytes(), res.IndexBytes())
	}
	if sum := mapped.IndexBytes() + mapped.MappedBytes(); sum != res.IndexBytes() {
		t.Fatalf("heap+mapped = %d, resident footprint = %d", sum, res.IndexBytes())
	}

	queries := make([]*vecmath.Sparse, 5)
	for i := range queries {
		queries[i] = randSigs(r, 1, 120, 12)[0].W
	}
	for _, m := range []Metric{EuclideanMetric(), CosineMetric()} {
		for qi, q := range queries {
			want, err := res.TopKSparse(q, 9, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mapped.TopKSparse(q, 9, m)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("%s q%d", m.Name, qi), got, want)
		}
	}
}

// TestMappedConcurrentReaders drives parallel TopK traffic over a
// mapped store — under -race this proves the mapping is shared by
// worker goroutines without synchronization bugs.
func TestMappedConcurrentReaders(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sigs := randSigs(r, 400, 100, 10)
	dir := saveSealedCorpus(t, sigs, 4)

	res, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	mapped.SetWorkers(4)

	q := randSigs(r, 1, 100, 10)[0].W
	want, err := res.TopKSparse(q, 12, CosineMetric())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				got, err := mapped.TopKSparse(q, 12, CosineMetric())
				if err != nil {
					errs[g] = err
					return
				}
				for i := range got {
					if got[i].Signature.DocID != want[i].Signature.DocID || got[i].Score != want[i].Score {
						errs[g] = fmt.Errorf("goroutine %d iter %d: hit %d diverged", g, it, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestMappedMutateAfterLoad pins the mapped store's write path: a DB
// opened with LoadDirMapped accepts Add/Seal/Compact like any other,
// results stay bit-identical to a resident DB mutated the same way,
// and compaction splices mapped blobs into heap copies — releasing
// bytes from the mapped count.
func TestMappedMutateAfterLoad(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	sigs := randSigs(r, 240, 90, 10)
	extra := randSigs(r, 120, 90, 10)
	for i := range extra {
		extra[i].DocID = fmt.Sprintf("extra-%d", i)
	}
	dir := saveSealedCorpus(t, sigs, 2)

	mutate := func(db *DB) {
		db.SetSegmentSize(64)
		if err := db.AddAll(extra); err != nil {
			t.Fatal(err)
		}
		db.Seal()
		if err := db.SetCompactionPolicy(CompactionPolicy{TierFanout: 2}); err != nil {
			t.Fatal(err)
		}
		db.Compact()
	}

	res, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mutate(res)

	mapped, err := LoadDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	before := mapped.MappedBytes()
	if before <= 0 {
		t.Fatalf("MappedBytes before mutation = %d, want > 0", before)
	}
	mutate(mapped)
	// Compaction merged sealed runs: every spliced segment copied its
	// blob to the heap and released its mapping.
	if after := mapped.MappedBytes(); after >= before {
		t.Fatalf("MappedBytes after compaction = %d, want < %d", after, before)
	}

	if mapped.Len() != res.Len() {
		t.Fatalf("mapped Len = %d, resident = %d", mapped.Len(), res.Len())
	}
	for qi := 0; qi < 4; qi++ {
		q := randSigs(r, 1, 90, 10)[0].W
		want, err := res.TopKSparse(q, 10, EuclideanMetric())
		if err != nil {
			t.Fatal(err)
		}
		got, err := mapped.TopKSparse(q, 10, EuclideanMetric())
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("post-mutate q%d", qi), got, want)
	}
}

// TestDBCloseLifecycle pins Close semantics: idempotent, releases the
// mappings, and every later operation fails with a typed *ConfigError
// instead of touching released memory.
func TestDBCloseLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sigs := randSigs(r, 120, 60, 8)
	dir := saveSealedCorpus(t, sigs, 2)

	db, err := LoadDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.MappedBytes() <= 0 {
		t.Fatal("expected a mapped store")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := db.MappedBytes(); got != 0 {
		t.Fatalf("MappedBytes after Close = %d, want 0", got)
	}
	if got := db.IndexBytes(); got != 0 {
		t.Fatalf("IndexBytes after Close = %d, want 0", got)
	}

	q := randSigs(r, 1, 60, 8)[0].W
	var ce *ConfigError
	if _, err := db.TopKSparse(q, 3, CosineMetric()); !errors.As(err, &ce) {
		t.Fatalf("TopK after Close: %v, want *ConfigError", err)
	}
	if err := db.Add(sigs[0]); !errors.As(err, &ce) {
		t.Fatalf("Add after Close: %v, want *ConfigError", err)
	}
	if err := db.SaveDir(t.TempDir()); !errors.As(err, &ce) {
		t.Fatalf("SaveDir after Close: %v, want *ConfigError", err)
	}
	if !strings.Contains(ce.Error(), "closed") {
		t.Fatalf("error %q should name the closed state", ce.Error())
	}

	// Closing a never-mapped, never-loaded DB is a no-op that still
	// engages the guard.
	fresh, err := NewDB(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Close(); err != nil {
		t.Fatalf("Close fresh: %v", err)
	}
	if err := fresh.Add(sigs[0]); !errors.As(err, &ce) {
		t.Fatalf("Add after closing fresh DB: %v, want *ConfigError", err)
	}
}

// TestSaveDirNeverRewritesMappedFiles is the mapped-persistence
// regression test: saving a mapped DB back to its own directory — even
// after growing it — must leave every mapped segment file untouched
// (new data lands in new files), and saving to a fresh directory must
// produce an independent loadable snapshot while the source mappings
// keep serving correct results.
func TestSaveDirNeverRewritesMappedFiles(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	sigs := randSigs(r, 200, 80, 9)
	dir := saveSealedCorpus(t, sigs, 2)

	stamp := func(d string) map[string]time.Time {
		m := map[string]time.Time{}
		ents, err := os.ReadDir(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "seg-") {
				fi, err := os.Stat(filepath.Join(d, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				m[e.Name()] = fi.ModTime()
			}
		}
		return m
	}
	before := stamp(dir)

	db, err := LoadDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	q := randSigs(r, 1, 80, 9)[0].W
	want, err := db.TopKSparse(q, 8, CosineMetric())
	if err != nil {
		t.Fatal(err)
	}

	// Grow the store, then save back into the directory the mappings
	// are served from.
	extra := randSigs(r, 50, 80, 9)
	for i := range extra {
		extra[i].DocID = fmt.Sprintf("grown-%d", i)
	}
	if err := db.AddAll(extra); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	after := stamp(dir)
	for name, mt := range before {
		got, ok := after[name]
		if !ok {
			t.Fatalf("mapped segment file %s disappeared after SaveDir", name)
		}
		if !got.Equal(mt) {
			t.Fatalf("mapped segment file %s was rewritten in place", name)
		}
	}
	if len(after) <= len(before) {
		t.Fatalf("grown store wrote no new segment files (%d -> %d)", len(before), len(after))
	}

	// Save to a fresh directory too — serialized from the mapped blobs.
	fresh := t.TempDir()
	if err := db.SaveDir(fresh); err != nil {
		t.Fatal(err)
	}
	reload, err := LoadDir(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if reload.Len() != len(sigs)+len(extra) {
		t.Fatalf("fresh snapshot Len = %d, want %d", reload.Len(), len(sigs)+len(extra))
	}

	// The original mapped view still answers (superset of the original
	// corpus, so just check it returns the old hits among top results).
	got, err := db.TopKSparse(q, 8, CosineMetric())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("mapped query after saves: %d hits, want %d", len(got), len(want))
	}
}
