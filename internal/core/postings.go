package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/vecmath"
)

// Posting storage comes in two forms behind one abstraction. The mutable
// active segment keeps the flat append-only layout (*Index: one
// []int32/[]float64 pair per dimension — cheap to append, bounded by the
// segment size), while sealed segments hold the block-compressed form
// (*blockPostings) produced by Seal and Compact. Queries only ever see
// the postings interface, and both implementations feed the same
// vecmath.Accumulator kernel with the same weights in the same ascending
// local-id order, so scores are identical whichever form a segment is in.
type postings interface {
	// dots accumulates q·signature for every stored signature into acc
	// (acc.Get(id) is an exact zero for signatures with no support
	// overlap).
	dots(q *vecmath.Sparse, acc *vecmath.Accumulator)
	// postingCount returns the total number of posting entries.
	postingCount() int64
	// memBytes returns the resident heap footprint of the posting
	// structure (backing-array capacities included), the number
	// IndexBytes aggregates and BENCH_postings.json compares flat vs
	// compressed. Memory-mapped bytes are excluded — they are page
	// cache, not heap; see mappedBytes.
	memBytes() int64
	// mappedBytes returns how many of the structure's bytes alias a
	// read-only file mapping instead of the heap (zero for every form
	// but a mapped-load blockPostings).
	mappedBytes() int64
}

// postingBlockSize is the compressed-block capacity: posting lists are
// cut into runs of at most this many entries, each decoded in one shot
// into the pooled scratch. 128 entries keep the decode loop and the
// scratch (one cache-friendly id/weight pair array) small while
// amortizing the per-block descriptor over enough postings.
const postingBlockSize = 128

// postingScratch is a stack-allocatable decode buffer for one block:
// local ids reconstructed from the delta-varints with the gathered
// weights alongside. The query path accumulates straight out of the
// byte streams (accumBlock); the scratch form serves validation,
// introspection, and tests.
type postingScratch struct {
	ids [postingBlockSize]int32
	ws  [postingBlockSize]float64
}

// blockDesc is one compressed block's metadata: where its byte stream
// starts, the gap-stream length (so the ordinal stream can be read in
// step with the gaps), the fixed ordinal width, the raw first id (the
// delta base), the entry count, and the largest absolute stored weight
// — the per-block bound that lets the accumulation loop skip a block
// exactly when it cannot contribute (maxAbsW == 0 means every term it
// would add is an exact zero; dims absent from the query skip all their
// blocks via the directory without touching a descriptor at all).
type blockDesc struct {
	maxAbsW float64
	off     uint32
	firstID int32
	idLen   uint16
	count   uint16
	// ordW is the bytes per ordinal (1, 2, or 4 — the block's largest
	// ordinal decides). Fixed-width keeps the hot decode branchless: one
	// byte already spans the 0..255 ordinals real signatures have.
	ordW uint8
}

// blockDescSize is the in-memory descriptor footprint (for memBytes).
const blockDescSize = int64(unsafe.Sizeof(blockDesc{}))

// blockPostings is the sealed-segment posting store: the same inverted
// index as *Index, re-encoded so ids cost ~1 byte instead of 4 and
// weights are not duplicated at all.
//
// Layout: dimension d's blocks are blocks[dir[d]:dir[d+1]], each
// covering up to postingBlockSize postings in ascending local-id order.
// A block's byte stream in blob holds count-1 uvarint id gaps (gap-1,
// since ids are strictly ascending) followed by count uvarint weight
// ordinals. The ordinal is the posting's position inside its
// signature's sparse support, so the stored weight is recovered as
// vals[id][ordinal] — the very float64 the signature itself holds, not
// a copy. Compression therefore touches ids only: decode yields the
// same weights in the same ascending-id order the flat layout feeds the
// accumulator, and indexed scores are bit-identical in either form.
//
// A blockPostings is immutable after construction; concurrent dots
// calls are safe (each worker owns its scratch and accumulator).
type blockPostings struct {
	dim       int
	n         int   // signatures covered (the accumulator size)
	nPostings int64 // total posting entries
	dir       []int32
	blocks    []blockDesc
	blob      []byte
	// blobMapped marks blob as an alias into a read-only segment-file
	// mapping (LoadOptions.MapPostings) rather than a heap allocation:
	// memBytes excludes it, mappedBytes reports it, and the owning
	// segment's mapFile handle decides when the bytes go away (splice
	// copies them to the heap first; Close releases them for good).
	blobMapped bool
	// vals[id] aliases signature id's sparse value array (no copy; the
	// one weight store is the canonical signature data).
	vals [][]float64
	// dimBound[d] is max over dimension d's blocks of maxAbsW — the
	// directory-level bound the threshold-pruned walk (prune.go) uses to
	// rank query dims by worst-case contribution |q_d|·dimBound[d]
	// without touching a descriptor. Zero for dims with no postings.
	dimBound []float64
	// minNorm2 / minPosNorm2 are the smallest (respectively smallest
	// positive) cached squared signature norm in the segment: the
	// newcomer-score bounds of the pruned walk. A dot-product upper bound
	// turns into a metric-score bound through the norm that maximizes the
	// score — the smallest norm for the Euclidean distance, the smallest
	// positive norm for the cosine (zero-norm signatures score an exact 0,
	// which any non-negative dot bound already dominates). Both are +Inf
	// when no signature qualifies.
	minNorm2    float64
	minPosNorm2 float64
}

// buildDimBound (re)derives the directory-level bounds from the block
// descriptors; callers invoke it whenever the descriptors' maxAbsW are
// final (seal-time compression, splice, snapshot load).
func (bp *blockPostings) buildDimBound() {
	if cap(bp.dimBound) < bp.dim {
		bp.dimBound = make([]float64, bp.dim)
	}
	bp.dimBound = bp.dimBound[:bp.dim]
	for d := 0; d < bp.dim; d++ {
		m := 0.0
		for bi := bp.dir[d]; bi < bp.dir[d+1]; bi++ {
			if w := bp.blocks[bi].maxAbsW; w > m {
				m = w
			}
		}
		bp.dimBound[d] = m
	}
}

// setNormBounds derives the newcomer-score norm bounds from the covered
// signatures' cached squared norms.
func (bp *blockPostings) setNormBounds(rows []Signature) {
	bp.minNorm2, bp.minPosNorm2 = math.Inf(1), math.Inf(1)
	for j := range rows {
		n2 := rows[j].W.Norm2()
		if n2 < bp.minNorm2 {
			bp.minNorm2 = n2
		}
		if n2 > 0 && n2 < bp.minPosNorm2 {
			bp.minPosNorm2 = n2
		}
	}
}

// compressIndex re-encodes a flat index into the block-compressed form.
// rows must be the signatures the index was built from, in local-id
// order — their value arrays become the weight store and their supports
// supply the weight ordinals.
func compressIndex(ix *Index, rows []Signature) *blockPostings {
	if ix.n != len(rows) {
		panic(fmt.Sprintf("core: compressIndex over %d rows for index of %d", len(rows), ix.n))
	}
	bp := &blockPostings{dim: ix.dim, n: ix.n}
	bp.vals = make([][]float64, ix.n)
	sup := make([][]int32, ix.n)
	for j := range rows {
		bp.vals[j] = rows[j].W.Values()
		sup[j] = rows[j].W.Support()
	}
	var total int64
	for d := range ix.ids {
		total += int64(len(ix.ids[d]))
	}
	bp.nPostings = total
	bp.dir = make([]int32, ix.dim+1)
	bp.blocks = make([]blockDesc, 0, int(total/postingBlockSize)+minPostingBlocks(ix))
	bp.blob = make([]byte, 0, int(total)*2)
	// cursor[id] walks signature id's support in step with the ascending
	// dimension sweep: the flat index was appended in exactly that order,
	// so the next posting of id at dimension d sits at support position
	// cursor[id].
	cursor := make([]int32, ix.n)
	var buf [binary.MaxVarintLen64]byte
	for d := 0; d < ix.dim; d++ {
		bp.dir[d] = int32(len(bp.blocks))
		ids, ws := ix.ids[d], ix.ws[d]
		for len(ids) > 0 {
			c := len(ids)
			if c > postingBlockSize {
				c = postingBlockSize
			}
			desc := blockDesc{off: uint32(len(bp.blob)), firstID: ids[0], count: uint16(c)}
			var ordBuf [postingBlockSize]int32
			maxOrd := int32(0)
			for k := 0; k < c; k++ {
				id := ids[k]
				ord := cursor[id]
				cursor[id]++
				if int(ord) >= len(sup[id]) || sup[id][ord] != int32(d) {
					panic(fmt.Sprintf("core: posting (dim %d, id %d) disagrees with signature support at ordinal %d", d, id, ord))
				}
				ordBuf[k] = ord
				if ord > maxOrd {
					maxOrd = ord
				}
				if a := math.Abs(ws[k]); a > desc.maxAbsW {
					desc.maxAbsW = a
				}
			}
			desc.ordW = ordWidth(maxOrd)
			prev := ids[0]
			for k := 1; k < c; k++ {
				m := binary.PutUvarint(buf[:], uint64(ids[k]-prev)-1)
				bp.blob = append(bp.blob, buf[:m]...)
				prev = ids[k]
			}
			desc.idLen = uint16(len(bp.blob) - int(desc.off))
			for k := 0; k < c; k++ {
				bp.blob = appendOrd(bp.blob, uint32(ordBuf[k]), desc.ordW)
			}
			bp.blocks = append(bp.blocks, desc)
			ids, ws = ids[c:], ws[c:]
		}
	}
	bp.dir[ix.dim] = int32(len(bp.blocks))
	bp.buildDimBound()
	bp.setNormBounds(rows)
	return bp
}

// ordWidth returns the fixed ordinal byte width covering maxOrd.
func ordWidth(maxOrd int32) uint8 {
	switch {
	case maxOrd < 1<<8:
		return 1
	case maxOrd < 1<<16:
		return 2
	default:
		return 4
	}
}

// appendOrd appends one ordinal at the block's fixed width (little
// endian).
func appendOrd(blob []byte, ord uint32, w uint8) []byte {
	switch w {
	case 1:
		return append(blob, byte(ord))
	case 2:
		return append(blob, byte(ord), byte(ord>>8))
	default:
		return append(blob, byte(ord), byte(ord>>8), byte(ord>>16), byte(ord>>24))
	}
}

// minPostingBlocks estimates one block per non-empty dimension (the
// partial-block tail every dimension may carry).
func minPostingBlocks(ix *Index) int {
	n := 0
	for d := range ix.ids {
		if len(ix.ids[d]) > 0 {
			n++
		}
	}
	return n
}

// spliceBlockPostings merges sealed segments' compressed postings — the
// compaction primitive. offsets[i] is part i's first local id inside the
// merged range; because adjacent segments cover adjacent id ranges, the
// merged per-dimension block sequence stays ascending without decoding a
// single varint: block payloads are gap-encoded relative to their
// descriptor's firstID, so rebasing a block is a descriptor edit and the
// byte streams are copied verbatim.
func spliceBlockPostings(dim int, parts []*blockPostings, offsets []int32) *blockPostings {
	out := &blockPostings{dim: dim}
	nBlocks, blobLen := 0, 0
	for _, p := range parts {
		nBlocks += len(p.blocks)
		blobLen += len(p.blob)
		out.n += p.n
		out.nPostings += p.nPostings
	}
	out.dir = make([]int32, dim+1)
	out.blocks = make([]blockDesc, 0, nBlocks)
	out.blob = make([]byte, 0, blobLen)
	out.vals = make([][]float64, 0, out.n)
	blobBase := make([]uint32, len(parts))
	for i, p := range parts {
		blobBase[i] = uint32(len(out.blob))
		out.blob = append(out.blob, p.blob...)
		out.vals = append(out.vals, p.vals...)
	}
	for d := 0; d < dim; d++ {
		out.dir[d] = int32(len(out.blocks))
		for i, p := range parts {
			for bi := p.dir[d]; bi < p.dir[d+1]; bi++ {
				bd := p.blocks[bi]
				bd.off += blobBase[i]
				bd.firstID += offsets[i]
				out.blocks = append(out.blocks, bd)
			}
		}
	}
	out.dir[dim] = int32(len(out.blocks))
	out.buildDimBound()
	// The merged newcomer bounds are the tightest over the parts: the
	// merged range is exactly the union of the parts' ranges.
	out.minNorm2, out.minPosNorm2 = math.Inf(1), math.Inf(1)
	for _, p := range parts {
		out.minNorm2 = math.Min(out.minNorm2, p.minNorm2)
		out.minPosNorm2 = math.Min(out.minPosNorm2, p.minPosNorm2)
	}
	return out
}

// dots implements postings: the block-compressed analogue of Index.Dots.
// The query support is walked in ascending dimension order and every
// block decodes into ascending local ids, so each candidate accumulates
// its intersection terms in exactly the order the flat walk (and
// Sparse.Dot) visits them — bit-identical dot products. Dimensions
// absent from a query never touch a descriptor (dir[d] == dir[d+1] for
// dims with no postings; dims not in the support are never looked up),
// which is the exact block-skip: skipped blocks contribute nothing by
// construction, not by approximation.
func (bp *blockPostings) dots(q *vecmath.Sparse, acc *vecmath.Accumulator) {
	if q.Dim() != bp.dim {
		panic(fmt.Sprintf("core: postings dots dimension mismatch %d vs %d", q.Dim(), bp.dim))
	}
	acc.Reset(bp.n)
	sums := acc.Sums()
	idx, val := q.Support(), q.Values()
	for k, d := range idx {
		lo, hi := bp.dir[d], bp.dir[d+1]
		if lo == hi {
			continue
		}
		qv := val[k]
		for bi := lo; bi < hi; bi++ {
			bd := &bp.blocks[bi]
			if bd.maxAbsW == 0 {
				// Every weight in the block is zero: its terms are exact
				// zeros, so skipping preserves bit-identity. (Signature
				// supports exclude zeros, so this only guards degenerate
				// hand-built stores.)
				continue
			}
			if sums != nil && bd.ordW == 1 {
				bp.accumBlockDense(qv, bd, sums)
			} else {
				bp.accumBlock(qv, bd, acc)
			}
		}
	}
}

// accumBlockDense is accumBlock's hot specialization: bulk-clear
// accumulator mode (the segment-capped common case) and one-byte
// ordinals, adding straight into the dense sum array. Same products in
// the same order as the general path — identical sums.
func (bp *blockPostings) accumBlockDense(qv float64, bd *blockDesc, sums []float64) {
	blob := bp.blob
	vals := bp.vals
	gp := int(bd.off)
	op := gp + int(bd.idLen)
	id := bd.firstID
	sums[id] += qv * vals[id][blob[op]]
	op++
	for k := 1; k < int(bd.count); k++ {
		b := blob[gp]
		gp++
		gap := uint32(b)
		if b >= 0x80 {
			gap &= 0x7f
			for shift := 7; ; shift += 7 {
				b = blob[gp]
				gp++
				gap |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		id += int32(gap) + 1
		sums[id] += qv * vals[id][blob[op]]
		op++
	}
}

// accumBlock is the fused per-block kernel of the compressed path: the
// gap stream and the ordinal stream are read in step (idLen says where
// the ordinals start), each posting's weight is gathered from its
// signature's value array, and the product lands in the accumulator
// immediately — no intermediate materialization. The ids decode in
// ascending order and the products are qv times the very same float64s
// the flat layout stores, so the accumulated sums are bit-identical to
// ScatterMulAdd over the flat posting arrays. One-byte ordinals (every
// real signature: supports up to 256 entries) take the branch-light
// specialized loop; wider ordinals decode through the scratch.
func (bp *blockPostings) accumBlock(qv float64, bd *blockDesc, acc *vecmath.Accumulator) {
	if bd.ordW != 1 {
		var sc postingScratch
		ids, ws := bp.decodeBlock(bd, &sc)
		acc.ScatterMulAdd(qv, ids, ws)
		return
	}
	blob := bp.blob
	vals := bp.vals
	gp := int(bd.off)
	op := gp + int(bd.idLen)
	id := bd.firstID
	acc.Add(id, qv*vals[id][blob[op]])
	op++
	for k := 1; k < int(bd.count); k++ {
		b := blob[gp]
		gp++
		gap := uint32(b)
		if b >= 0x80 {
			gap &= 0x7f
			for shift := 7; ; shift += 7 {
				b = blob[gp]
				gp++
				gap |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		id += int32(gap) + 1
		acc.Add(id, qv*vals[id][blob[op]])
		op++
	}
}

// decodeBlock expands one block into the scratch: ids from the gap
// varints, weights gathered through the ordinal varints from the
// signatures' own value arrays.
func (bp *blockPostings) decodeBlock(bd *blockDesc, sc *postingScratch) ([]int32, []float64) {
	n := int(bd.count)
	ids, ws := sc.ids[:n], sc.ws[:n]
	blob := bp.blob
	pos := int(bd.off)
	id := bd.firstID
	ids[0] = id
	for k := 1; k < n; k++ {
		b := blob[pos]
		pos++
		gap := uint32(b)
		if b >= 0x80 {
			gap &= 0x7f
			for shift := 7; ; shift += 7 {
				b = blob[pos]
				pos++
				gap |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		id += int32(gap) + 1
		ids[k] = id
	}
	vals := bp.vals
	for k := 0; k < n; k++ {
		var ord uint32
		switch bd.ordW {
		case 1:
			ord = uint32(blob[pos])
		case 2:
			ord = uint32(blob[pos]) | uint32(blob[pos+1])<<8
		default:
			ord = uint32(blob[pos]) | uint32(blob[pos+1])<<8 | uint32(blob[pos+2])<<16 | uint32(blob[pos+3])<<24
		}
		pos += int(bd.ordW)
		ws[k] = vals[ids[k]][ord]
	}
	return ids, ws
}

// postingCount implements postings.
func (bp *blockPostings) postingCount() int64 { return bp.nPostings }

// memBytes implements postings: blob + descriptors + directory + the
// per-signature value-slice table (24 bytes each — the headers only;
// the values themselves belong to the signatures). A mapped blob is
// page cache, not heap, so it is excluded here and reported by
// mappedBytes instead.
func (bp *blockPostings) memBytes() int64 {
	b := int64(unsafe.Sizeof(*bp)) +
		int64(cap(bp.blocks))*blockDescSize +
		int64(cap(bp.dir))*4 +
		int64(cap(bp.dimBound))*8 +
		int64(cap(bp.vals))*24
	if !bp.blobMapped {
		b += int64(cap(bp.blob))
	}
	return b
}

// mappedBytes implements postings: the blob length when it aliases a
// segment-file mapping, zero for heap-backed blocks.
func (bp *blockPostings) mappedBytes() int64 {
	if bp.blobMapped {
		return int64(len(bp.blob))
	}
	return 0
}

// dots implements postings for the flat form.
func (ix *Index) dots(q *vecmath.Sparse, acc *vecmath.Accumulator) {
	ix.Dots(q, acc)
}

// postingCount implements postings.
func (ix *Index) postingCount() int64 {
	var n int64
	for d := range ix.ids {
		n += int64(len(ix.ids[d]))
	}
	return n
}

// memBytes implements postings: per-dimension backing capacities plus
// the two slice-header tables.
func (ix *Index) memBytes() int64 {
	b := int64(unsafe.Sizeof(*ix)) + int64(cap(ix.ids))*24 + int64(cap(ix.ws))*24
	for d := range ix.ids {
		b += int64(cap(ix.ids[d]))*4 + int64(cap(ix.ws[d]))*8
	}
	return b
}

// mappedBytes implements postings: the flat form is always heap-backed.
func (ix *Index) mappedBytes() int64 { return 0 }
