package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// buildFlatAndCompressed indexes sigs both ways: the flat append-only
// Index and its block-compressed re-encoding.
func buildFlatAndCompressed(t *testing.T, sigs []Signature, dim int) (*Index, *blockPostings) {
	t.Helper()
	ix, err := NewIndex(dim)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sigs {
		ix.Add(s.W)
	}
	return ix, compressIndex(ix, sigs)
}

// TestBlockPostingsMatchesFlat is the kernel-level equivalence the
// compressed layout rests on: for random corpora — including posting
// lists long enough to span several blocks — dots over the compressed
// form must equal dots over the flat form bit-for-bit, and the decoded
// blocks must enumerate exactly the flat posting lists.
func TestBlockPostingsMatchesFlat(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		// Small dimension + many signatures forces multi-block lists
		// (n/dim*nnz ≥ 600/30*8 = 160 postings per dimension > 128).
		dim := 20 + r.Intn(10)
		n := 600 + r.Intn(200)
		nnz := 8 + r.Intn(6)
		sigs := randSigs(r, n, dim, nnz)
		ix, bp := buildFlatAndCompressed(t, sigs, dim)

		if bp.postingCount() != ix.postingCount() {
			t.Fatalf("seed %d: posting counts %d vs %d", seed, bp.postingCount(), ix.postingCount())
		}
		multi := false
		var sc postingScratch
		for d := 0; d < dim; d++ {
			lo, hi := bp.dir[d], bp.dir[d+1]
			if hi-lo > 1 {
				multi = true
			}
			var gotIDs []int32
			var gotWs []float64
			for bi := lo; bi < hi; bi++ {
				ids, ws := bp.decodeBlock(&bp.blocks[bi], &sc)
				gotIDs = append(gotIDs, ids...)
				gotWs = append(gotWs, ws...)
			}
			if len(gotIDs) != len(ix.ids[d]) {
				t.Fatalf("seed %d dim %d: %d decoded postings, flat has %d", seed, d, len(gotIDs), len(ix.ids[d]))
			}
			for k := range gotIDs {
				if gotIDs[k] != ix.ids[d][k] || gotWs[k] != ix.ws[d][k] {
					t.Fatalf("seed %d dim %d posting %d: decoded (%d, %v), flat (%d, %v)",
						seed, d, k, gotIDs[k], gotWs[k], ix.ids[d][k], ix.ws[d][k])
				}
			}
		}
		if !multi {
			t.Fatalf("seed %d: corpus produced no multi-block posting list; shrink dim or raise n", seed)
		}

		var accFlat, accComp vecmath.Accumulator
		for q := 0; q < 10; q++ {
			query := randSigs(r, 1, dim, nnz)[0].W
			ix.Dots(query, &accFlat)
			bp.dots(query, &accComp)
			for id := 0; id < n; id++ {
				if accFlat.Get(id) != accComp.Get(id) {
					t.Fatalf("seed %d query %d id %d: flat dot %v, compressed %v",
						seed, q, id, accFlat.Get(id), accComp.Get(id))
				}
			}
		}

		if flat, comp := ix.memBytes(), bp.memBytes(); comp*2 > flat {
			t.Fatalf("seed %d: compressed postings %d bytes not < half of flat %d", seed, comp, flat)
		}
	}
}

// TestBlockPostingsWideOrdinals exercises the 2-byte ordinal path:
// signatures with supports larger than 256 entries force ordW=2 blocks,
// which must decode and accumulate identically to the flat index.
func TestBlockPostingsWideOrdinals(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const dim, n, nnz = 600, 40, 400 // nnz > 256: ordinals overflow one byte
	sigs := randSigs(r, n, dim, nnz)
	ix, bp := buildFlatAndCompressed(t, sigs, dim)
	wide := false
	for bi := range bp.blocks {
		if bp.blocks[bi].ordW > 1 {
			wide = true
		}
	}
	if !wide {
		t.Fatal("corpus produced no wide-ordinal blocks; raise nnz")
	}
	var accFlat, accComp vecmath.Accumulator
	for q := 0; q < 8; q++ {
		query := randSigs(r, 1, dim, nnz)[0].W
		ix.Dots(query, &accFlat)
		bp.dots(query, &accComp)
		for id := 0; id < n; id++ {
			if accFlat.Get(id) != accComp.Get(id) {
				t.Fatalf("query %d id %d: flat dot %v, compressed %v", q, id, accFlat.Get(id), accComp.Get(id))
			}
		}
	}
}

// TestSpliceBlockPostings pins the compaction primitive: splicing the
// compressed postings of adjacent ranges must equal compressing the
// whole range in one go — descriptors rebased, byte streams verbatim.
func TestSpliceBlockPostings(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const dim, n, nnz = 50, 300, 9
	sigs := randSigs(r, n, dim, nnz)
	_, whole := buildFlatAndCompressed(t, sigs, dim)
	splits := []int{0, 97, 201, n}
	var parts []*blockPostings
	var offsets []int32
	for s := 0; s+1 < len(splits); s++ {
		_, part := buildFlatAndCompressed(t, sigs[splits[s]:splits[s+1]], dim)
		parts = append(parts, part)
		offsets = append(offsets, int32(splits[s]))
	}
	merged := spliceBlockPostings(dim, parts, offsets)
	if merged.n != whole.n || merged.postingCount() != whole.postingCount() {
		t.Fatalf("merged n/postings %d/%d, whole %d/%d", merged.n, merged.postingCount(), whole.n, whole.postingCount())
	}
	var accA, accB vecmath.Accumulator
	for q := 0; q < 10; q++ {
		query := randSigs(r, 1, dim, nnz)[0].W
		whole.dots(query, &accA)
		merged.dots(query, &accB)
		for id := 0; id < n; id++ {
			if accA.Get(id) != accB.Get(id) {
				t.Fatalf("query %d id %d: whole %v, spliced %v", q, id, accA.Get(id), accB.Get(id))
			}
		}
	}
}

// TestSealCompressesPostings pins the lifecycle plumbing: sealing swaps
// a segment's flat index for compressed blocks (shrinking IndexBytes),
// queries stay bit-identical, and posting counts are conserved.
func TestSealCompressesPostings(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const dim, n, nnz, k = 200, 250, 20, 15
	db, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	sigs := randSigs(r, n, dim, nnz)
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	query := randSigs(r, 1, dim, nnz)[0].W
	want, err := db.TopKSparse(query, k, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	flatBytes := db.IndexBytes()
	flatPostings := db.IndexPostings()
	db.Seal()
	if got := db.IndexPostings(); got != flatPostings {
		t.Fatalf("postings %d after Seal, want %d", got, flatPostings)
	}
	if got := db.IndexBytes(); got*2 > flatBytes {
		t.Fatalf("sealed IndexBytes %d not < half of flat %d", got, flatBytes)
	}
	got, err := db.TopKSparse(query, k, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "sealed vs flat", got, want)
}

// TestSealEmptyActiveNoOp is the regression test for the empty-seal
// fix: sealing a store whose active segments are empty (fresh DB, or
// already sealed once) must not mint zero-length sealed segments — they
// would pollute the manifest and every compaction run.
func TestSealEmptyActiveNoOp(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const dim, nnz = 40, 6
	db, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	db.Seal() // empty DB: no shard has any segment to seal
	if got := db.Segments(); got != 0 {
		t.Fatalf("Seal on empty DB created %d segments", got)
	}
	if err := db.AddAll(randSigs(r, 5, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	segs := db.Segments()
	// Sealing again (and again) with no new records must change nothing:
	// the actives are gone and nothing may take their place.
	db.Seal()
	db.Seal()
	if got := db.Segments(); got != segs {
		t.Fatalf("repeated Seal grew segments %d -> %d", segs, got)
	}
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			if sg.len() == 0 {
				t.Fatalf("zero-length segment %d in shard %d", sg.id, si)
			}
		}
	}
	// And a save/load cycle must not see phantom segments either.
	dir := t.TempDir() + "/db"
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Segments(); got != segs {
		t.Fatalf("reloaded store has %d segments, want %d", got, segs)
	}
}

// TestOrdWidth pins the fixed-width ordinal selection.
func TestOrdWidth(t *testing.T) {
	cases := []struct {
		maxOrd int32
		want   uint8
	}{{0, 1}, {255, 1}, {256, 2}, {65535, 2}, {65536, 4}, {1 << 23, 4}}
	for _, c := range cases {
		if got := ordWidth(c.maxOrd); got != c.want {
			t.Fatalf("ordWidth(%d) = %d, want %d", c.maxOrd, got, c.want)
		}
	}
}

// TestIndexBytesIntrospection sanity-checks the byte accounting both
// layouts report: positive, and dominated by the posting payload.
func TestIndexBytesIntrospection(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	const dim, n, nnz = 100, 120, 10
	db, err := NewDB(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(randSigs(r, n, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	posts := db.IndexPostings()
	if posts != int64(nPostings(db)) {
		t.Fatalf("IndexPostings %d, stored non-zeros %d", posts, nPostings(db))
	}
	if flat := db.IndexBytes(); flat < posts*12 {
		t.Fatalf("flat IndexBytes %d below the 12 B/posting payload floor (%d postings)", flat, posts)
	}
	db.Seal()
	if comp := db.IndexBytes(); comp <= 0 {
		t.Fatalf("sealed IndexBytes %d", comp)
	}
	if got := db.IndexPostings(); got != posts {
		t.Fatalf("sealed IndexPostings %d, want %d", got, posts)
	}
}

// nPostings sums the stored supports (what the index must hold).
func nPostings(db *DB) int {
	total := 0
	for _, s := range db.All() {
		total += s.W.NNZ()
	}
	return total
}

// TestCompressedTopKPropertySweep is the postings-PR acceptance sweep:
// across seeds × shards{1,3,4} × workers{1,4} × seal/compaction points,
// TopK, TopKBatch, and ClassifyBatch over stores holding compressed
// (sealed), flat (active), and mixed segments must agree bit-for-bit
// with the never-sealed flat reference.
func TestCompressedTopKPropertySweep(t *testing.T) {
	metrics := []Metric{EuclideanMetric(), CosineMetric()}
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		dim := 80 + r.Intn(80)
		n := 120 + r.Intn(120)
		nnz := 6 + r.Intn(12)
		k := 1 + r.Intn(20)
		sigs := randSigs(r, n, dim, nnz)
		queries := make([]*vecmath.Sparse, 6)
		for i := range queries {
			queries[i] = randSigs(r, 1, dim, nnz)[0].W
		}

		// Reference: single shard, never sealed — pure flat layout.
		ref, err := NewDB(dim)
		if err != nil {
			t.Fatal(err)
		}
		ref.SetWorkers(-1)
		if err := ref.AddAll(sigs); err != nil {
			t.Fatal(err)
		}
		wantTop := make([][]SearchResult, len(queries))
		for i, q := range queries {
			if wantTop[i], err = ref.TopKSparse(q, k, metrics[0]); err != nil {
				t.Fatal(err)
			}
		}
		wantLabels, err := ref.ClassifyBatch(queries, 5, metrics[0])
		if err != nil {
			t.Fatal(err)
		}

		for _, shards := range []int{1, 3, 4} {
			for _, workers := range []int{1, 4} {
				for _, mode := range []string{"sealed", "mixed", "compacted", "mapped"} {
					db, err := NewShardedDB(dim, shards)
					if err != nil {
						t.Fatal(err)
					}
					db.SetWorkers(workers)
					db.SetSegmentSize(32)
					for i, s := range sigs {
						if err := db.Add(s); err != nil {
							t.Fatal(err)
						}
						if mode != "mixed" && i%53 == 52 {
							db.Seal()
						}
					}
					switch mode {
					case "sealed":
						db.Seal()
					case "compacted":
						db.Seal()
						db.SetSegmentSize(DefaultSegmentSize)
						db.Compact()
					case "mapped":
						// Seal, snapshot, and reload with postings served
						// off the file mapping — bit-identical walk required.
						db.Seal()
						dir := t.TempDir()
						if err := db.SaveDir(dir); err != nil {
							t.Fatal(err)
						}
						if db, err = LoadDirMapped(dir); err != nil {
							t.Fatal(err)
						}
						mdb := db
						t.Cleanup(func() { mdb.Close() })
						db.SetWorkers(workers)
					}
					tag := fmt.Sprintf("seed=%d shards=%d workers=%d mode=%s segs=%d",
						seed, shards, workers, mode, db.Segments())
					for _, m := range metrics {
						want, err := ref.TopKSparse(queries[0], k, m)
						if err != nil {
							t.Fatal(err)
						}
						got, err := db.TopKSparse(queries[0], k, m)
						if err != nil {
							t.Fatal(err)
						}
						sameResults(t, tag+" "+m.Name, got, want)
					}
					gotBatch, err := db.TopKBatch(queries, k, metrics[0])
					if err != nil {
						t.Fatal(err)
					}
					for i := range queries {
						sameResults(t, fmt.Sprintf("%s batch query %d", tag, i), gotBatch[i], wantTop[i])
					}
					gotLabels, err := db.ClassifyBatch(queries, 5, metrics[0])
					if err != nil {
						t.Fatal(err)
					}
					for i := range wantLabels {
						if gotLabels[i] != wantLabels[i] {
							t.Fatalf("%s: ClassifyBatch[%d] = %q, want %q", tag, i, gotLabels[i], wantLabels[i])
						}
					}
				}
			}
		}
	}
}
