//go:build linux

package core

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile is a read-only memory mapping of one segment file. On Linux
// the mapping is served straight off the page cache: loading a sealed
// segment with MapPostings costs no heap copy of the postings blob, and
// cold posting blocks are paged in on first touch (and evicted under
// memory pressure) by the OS instead of living resident for the DB's
// lifetime. The mapping is advised MADV_RANDOM because the pruned TopK
// walk touches blocks by descriptor, not sequentially — readahead would
// fault in bytes the walk then skips.
type mapFile struct {
	data []byte
}

// mapOpen maps path read-only. Callers treat any error as "use the read
// path instead": mapped loads degrade silently, never fail, on mapping
// problems (the read path re-reports real I/O errors with full context).
func mapOpen(path string) (*mapFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("core: cannot map %d-byte file", size)
	}
	// MAP_POPULATE prefaults the page tables in one syscall instead of
	// one minor fault per 4K page. It costs nothing extra in residency:
	// the load-time CRC pass touches every byte of the file anyway, so
	// the pages are entering the page cache regardless — this just
	// batches the faults out of the hot decode loops.
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ,
		syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return nil, err
	}
	// Advisory only: a failure leaves the mapping fully usable.
	_ = syscall.Madvise(data, syscall.MADV_RANDOM)
	return &mapFile{data: data}, nil
}

// bytes returns the mapped file contents. The slice is read-only memory:
// writing through it faults.
func (m *mapFile) bytes() []byte { return m.data }

// close unmaps the file. Idempotent; the mapped bytes (and anything
// aliasing them, like a mapped postings blob) must not be touched after.
func (m *mapFile) close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
