package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestModelRoundTrip(t *testing.T) {
	c, err := NewCorpus(50)
	if err != nil {
		t.Fatal(err)
	}
	docs := []*Document{
		{ID: "a", Duration: time.Second, Counts: map[int]uint64{1: 10, 7: 3}},
		{ID: "b", Duration: time.Second, Counts: map[int]uint64{1: 4, 30: 9}},
		{ID: "c", Duration: time.Second, Counts: map[int]uint64{7: 1}},
	}
	for _, d := range docs {
		if err := c.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != m.Dim() {
		t.Fatalf("dim = %d, want %d", back.Dim(), m.Dim())
	}
	origIDF, backIDF := m.IDF(), back.IDF()
	for i := range origIDF {
		if origIDF[i] != backIDF[i] {
			t.Fatalf("idf[%d] = %v, want %v", i, backIDF[i], origIDF[i])
		}
	}
	// Transforming a new document with the restored model matches the
	// original model exactly — the database workflow requirement.
	newDoc := &Document{ID: "new", Counts: map[int]uint64{1: 2, 30: 2}}
	s1, err := m.Transform(newDoc)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := back.Transform(newDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Dense().Equal(s2.Dense(), 0) {
		t.Error("restored model transforms differently")
	}
}

func TestWriteModelNil(t *testing.T) {
	if err := WriteModel(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil model should fail")
	}
}

func TestReadModelErrors(t *testing.T) {
	for _, bad := range []string{
		"{not json",
		`{"dim":0,"idf":{}}`,
		`{"dim":2,"idf":{"5":1.0}}`,
		`{"dim":2,"idf":{"1":-0.5}}`,
	} {
		if _, err := ReadModel(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadModel(%q) should fail", bad)
		}
	}
}
