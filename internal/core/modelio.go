package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// modelJSON is the wire form of a fitted tf-idf model. The idf vector is
// stored sparsely: terms absent from the training corpus have idf 0.
type modelJSON struct {
	Dim int             `json:"dim"`
	IDF map[int]float64 `json:"idf"`
}

// WriteModel persists a fitted model as a single JSON object. Operators
// fit the idf weighting once over a labeled history corpus and reuse it to
// embed signatures collected later (the paper's database workflow, §2.2):
// a classifier is only meaningful against vectors weighted by the same
// model. Failures are typed *SnapshotError (model I/O is part of the
// snapshot domain; Path is empty for caller-owned streams).
//
//fmeter:errdomain snapshot
func WriteModel(w io.Writer, m *Model) error {
	if m == nil {
		return &SnapshotError{Err: errors.New("nil model")}
	}
	mj := modelJSON{Dim: m.dim, IDF: make(map[int]float64)}
	for i, x := range m.idf {
		if x != 0 {
			mj.IDF[i] = x
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(mj); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing model: %w", err)}
	}
	return nil
}

// ReadModel parses a model written by WriteModel.
//
//fmeter:errdomain snapshot
func ReadModel(r io.Reader) (*Model, error) {
	var mj modelJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&mj); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading model: %w", err)}
	}
	if mj.Dim < 1 {
		return nil, &SnapshotError{Err: fmt.Errorf("model dimension %d invalid", mj.Dim)}
	}
	m := &Model{dim: mj.Dim, idf: make([]float64, mj.Dim)}
	for i, x := range mj.IDF {
		if i < 0 || i >= mj.Dim {
			return nil, &SnapshotError{Err: fmt.Errorf("idf index %d outside dimension %d", i, mj.Dim)}
		}
		if x < 0 {
			return nil, &SnapshotError{Err: fmt.Errorf("negative idf %v at term %d", x, i)}
		}
		m.idf[i] = x
	}
	return m, nil
}

// Model snapshot format: the binary companion of the DB snapshot, so a
// restart restores the exact vector space alongside the signature
// database. Layout (little-endian):
//
//	magic   "FMMD" (4 bytes)
//	version uint16 (currently 1)
//	dim     uint32
//	nnz     uint32
//	nnz × (idx int32, idf float64) — strictly ascending idx, idf > 0
const (
	modelMagic   = "FMMD"
	modelVersion = 1
)

// WriteModelSnapshot serializes a fitted model in the versioned binary
// snapshot format.
//
//fmeter:errdomain snapshot
func WriteModelSnapshot(w io.Writer, m *Model) error {
	if m == nil {
		return &SnapshotError{Err: errors.New("nil model")}
	}
	if m.dim > maxSnapshotDim {
		return &SnapshotError{Err: fmt.Errorf("dimension %d exceeds snapshot format bound %d", m.dim, maxSnapshotDim)}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagic); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing model snapshot: %w", err)}
	}
	le := binary.LittleEndian
	nnz := 0
	for _, x := range m.idf {
		if x != 0 {
			nnz++
		}
	}
	for _, v := range []any{uint16(modelVersion), uint32(m.dim), uint32(nnz)} {
		if err := binary.Write(bw, le, v); err != nil {
			return &SnapshotError{Err: fmt.Errorf("writing model snapshot: %w", err)}
		}
	}
	var rec [12]byte
	for i, x := range m.idf {
		if x == 0 {
			continue
		}
		le.PutUint32(rec[:4], uint32(i))
		le.PutUint64(rec[4:12], math.Float64bits(x))
		if _, err := bw.Write(rec[:]); err != nil {
			return &SnapshotError{Err: fmt.Errorf("writing model snapshot: %w", err)}
		}
	}
	if err := bw.Flush(); err != nil {
		return &SnapshotError{Err: fmt.Errorf("writing model snapshot: %w", err)}
	}
	return nil
}

// ReadModelSnapshot parses a model snapshot written by WriteModelSnapshot.
//
//fmeter:errdomain snapshot
func ReadModelSnapshot(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading model snapshot magic: %w", err)}
	}
	if string(magic) != modelMagic {
		return nil, &SnapshotError{Err: fmt.Errorf("bad model snapshot magic %q", magic)}
	}
	le := binary.LittleEndian
	var version uint16
	if err := binary.Read(br, le, &version); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading model snapshot: %w", err)}
	}
	if version != modelVersion {
		return nil, &SnapshotError{Err: fmt.Errorf("unsupported model snapshot version %d (have %d)", version, modelVersion)}
	}
	var dim32, nnz uint32
	if err := binary.Read(br, le, &dim32); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading model snapshot: %w", err)}
	}
	if err := binary.Read(br, le, &nnz); err != nil {
		return nil, &SnapshotError{Err: fmt.Errorf("reading model snapshot: %w", err)}
	}
	if dim32 < 1 || dim32 > maxSnapshotDim {
		return nil, &SnapshotError{Err: fmt.Errorf("model snapshot dimension %d outside [1, %d]", dim32, maxSnapshotDim)}
	}
	if nnz > dim32 {
		return nil, &SnapshotError{Err: fmt.Errorf("model snapshot nnz %d exceeds dimension %d", nnz, dim32)}
	}
	m := &Model{dim: int(dim32), idf: make([]float64, dim32)}
	rec := make([]byte, 12)
	prev := int32(-1)
	for k := uint32(0); k < nnz; k++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, &SnapshotError{Err: fmt.Errorf("model snapshot entry %d: %w", k, noEOF(err))}
		}
		i := int32(le.Uint32(rec[:4]))
		x := math.Float64frombits(le.Uint64(rec[4:12]))
		if i <= prev || int(i) >= m.dim {
			return nil, &SnapshotError{Err: fmt.Errorf("model snapshot entry %d: index %d not strictly ascending in [0, %d)", k, i, m.dim)}
		}
		if x <= 0 {
			return nil, &SnapshotError{Err: fmt.Errorf("model snapshot entry %d: idf %v must be positive", k, x)}
		}
		prev = i
		m.idf[i] = x
	}
	return m, nil
}
