package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelJSON is the wire form of a fitted tf-idf model. The idf vector is
// stored sparsely: terms absent from the training corpus have idf 0.
type modelJSON struct {
	Dim int             `json:"dim"`
	IDF map[int]float64 `json:"idf"`
}

// WriteModel persists a fitted model as a single JSON object. Operators
// fit the idf weighting once over a labeled history corpus and reuse it to
// embed signatures collected later (the paper's database workflow, §2.2):
// a classifier is only meaningful against vectors weighted by the same
// model.
func WriteModel(w io.Writer, m *Model) error {
	if m == nil {
		return fmt.Errorf("core: nil model")
	}
	mj := modelJSON{Dim: m.dim, IDF: make(map[int]float64)}
	for i, x := range m.idf {
		if x != 0 {
			mj.IDF[i] = x
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(mj)
}

// ReadModel parses a model written by WriteModel.
func ReadModel(r io.Reader) (*Model, error) {
	var mj modelJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: reading model: %w", err)
	}
	if mj.Dim < 1 {
		return nil, fmt.Errorf("core: model dimension %d invalid", mj.Dim)
	}
	m := &Model{dim: mj.Dim, idf: make([]float64, mj.Dim)}
	for i, x := range mj.IDF {
		if i < 0 || i >= mj.Dim {
			return nil, fmt.Errorf("core: idf index %d outside dimension %d", i, mj.Dim)
		}
		if x < 0 {
			return nil, fmt.Errorf("core: negative idf %v at term %d", x, i)
		}
		m.idf[i] = x
	}
	return m, nil
}
