package core

import (
	"testing"

	"repro/internal/vecmath"
)

func TestTopTerms(t *testing.T) {
	sig := SignatureFromDense("x", "", vecmath.Vector{0, 0.5, -0.9, 0.1})
	names := []string{"a", "b", "c", "d"}
	top, err := TopTerms(sig, 2, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Term != 2 || top[0].Name != "c" || top[0].Weight != -0.9 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Term != 1 || top[1].Name != "b" {
		t.Errorf("top[1] = %+v", top[1])
	}
	// k beyond support returns all non-zero terms.
	all, err := TopTerms(sig, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("all = %d, want 3 non-zero terms", len(all))
	}
	if all[0].Name != "" {
		t.Error("nil names should leave Name empty")
	}
}

func TestTopTermsValidation(t *testing.T) {
	sig := SignatureFromDense("", "", vecmath.Vector{1, 2})
	if _, err := TopTerms(sig, 0, nil); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := TopTerms(sig, 1, []string{"only-one"}); err == nil {
		t.Error("short name table should fail")
	}
}

func TestTopTermsDeterministicTieBreak(t *testing.T) {
	sig := SignatureFromDense("", "", vecmath.Vector{0.5, 0.5, 0.5})
	top, err := TopTerms(sig, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tw := range top {
		if tw.Term != i {
			t.Errorf("ties should order by term index: %+v", top)
		}
	}
}

func TestContrast(t *testing.T) {
	a := SignatureFromDense("", "", vecmath.Vector{0.9, 0.1, 0.0})
	b := SignatureFromDense("", "", vecmath.Vector{0.1, 0.1, 0.7})
	names := []string{"crypto_aes", "vfs_read", "journal_commit"}
	diff, err := Contrast(a, b, 2, names)
	if err != nil {
		t.Fatal(err)
	}
	if diff[0].Term != 0 || diff[0].Weight <= 0 {
		t.Errorf("diff[0] = %+v; want crypto_aes stronger in a", diff[0])
	}
	if diff[1].Term != 2 || diff[1].Weight >= 0 {
		t.Errorf("diff[1] = %+v; want journal stronger in b", diff[1])
	}
}

func TestContrastValidation(t *testing.T) {
	a := SignatureFromDense("", "", vecmath.Vector{1})
	b := SignatureFromDense("", "", vecmath.Vector{1, 2})
	if _, err := Contrast(a, b, 1, nil); err == nil {
		t.Error("dimension mismatch should fail")
	}
	c := SignatureFromDense("", "", vecmath.Vector{1})
	if _, err := Contrast(a, c, 0, nil); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Contrast(a, c, 1, []string{}); err == nil {
		t.Error("short names should fail")
	}
	// Identical signatures: no distinguishing terms.
	same, err := Contrast(a, c, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 0 {
		t.Errorf("identical signatures should contrast to nothing, got %v", same)
	}
}
