package debugfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestCreateReadWrite(t *testing.T) {
	fs := New()
	var stored []byte
	err := fs.Create("fmeter/counters",
		func() ([]byte, error) { return []byte("42"), nil },
		func(b []byte) error { stored = append([]byte(nil), b...); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/fmeter//counters/")
	if err != nil {
		t.Fatalf("ReadFile with messy path: %v", err)
	}
	if string(got) != "42" {
		t.Errorf("ReadFile = %q", got)
	}
	if err := fs.WriteFile("fmeter/counters", []byte("reset")); err != nil {
		t.Fatal(err)
	}
	if string(stored) != "reset" {
		t.Errorf("stored = %q", stored)
	}
}

func TestCreateValidation(t *testing.T) {
	fs := New()
	if err := fs.Create("", nil, nil); err == nil {
		t.Error("empty path should fail")
	}
	if err := fs.Create("x", nil, nil); err == nil {
		t.Error("no handlers should fail")
	}
	read := func() ([]byte, error) { return nil, nil }
	if err := fs.Create("x", read, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("x", read, nil); err == nil {
		t.Error("duplicate path should fail")
	}
	if err := fs.Create("/x/", read, nil); err == nil {
		t.Error("duplicate after cleaning should fail")
	}
}

func TestAccessModes(t *testing.T) {
	fs := New()
	read := func() ([]byte, error) { return []byte("r"), nil }
	write := func([]byte) error { return nil }
	if err := fs.Create("ro", read, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("wo", nil, write); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("ro", nil); !errors.Is(err, ErrNotSupported) {
		t.Errorf("write to read-only: %v", err)
	}
	if _, err := fs.ReadFile("wo"); !errors.Is(err, ErrNotSupported) {
		t.Errorf("read of write-only: %v", err)
	}
	if _, err := fs.ReadFile("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read of missing: %v", err)
	}
	if err := fs.WriteFile("missing", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("write of missing: %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	read := func() ([]byte, error) { return nil, nil }
	if err := fs.Create("a/b", read, nil); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("a/b") {
		t.Error("Exists = false after Create")
	}
	if err := fs.Remove("a/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a/b") {
		t.Error("Exists = true after Remove")
	}
	if err := fs.Remove("a/b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Remove: %v", err)
	}
}

func TestList(t *testing.T) {
	fs := New()
	read := func() ([]byte, error) { return nil, nil }
	for _, p := range []string{"tracing/trace", "tracing/tracing_on", "fmeter/counters", "fmeter/reset"} {
		if err := fs.Create(p, read, nil); err != nil {
			t.Fatal(err)
		}
	}
	all := fs.List("")
	if len(all) != 4 {
		t.Errorf("List(\"\") = %v", all)
	}
	fm := fs.List("fmeter")
	if len(fm) != 2 || fm[0] != "fmeter/counters" || fm[1] != "fmeter/reset" {
		t.Errorf("List(fmeter) = %v", fm)
	}
	// prefix must match on path-segment boundary
	if got := fs.List("fmet"); len(got) != 0 {
		t.Errorf("List(fmet) = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	read := func() ([]byte, error) { return []byte("x"), nil }
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("n/%d", i)
			if err := fs.Create(p, read, nil); err != nil {
				t.Error(err)
				return
			}
			if _, err := fs.ReadFile(p); err != nil {
				t.Error(err)
			}
			fs.List("n")
		}(i)
	}
	wg.Wait()
	if got := len(fs.List("n")); got != 8 {
		t.Errorf("nodes = %d, want 8", got)
	}
}
