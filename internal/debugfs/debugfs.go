// Package debugfs models the Linux debugfs pseudo-filesystem interface
// through which both Ftrace and Fmeter export kernel-side data to
// user-space (paper §3). Files are registered with read/write handlers that
// run at access time, exactly like debugfs file_operations: reading
// "fmeter/counters" serializes the live per-CPU counter state, it does not
// return a stored snapshot.
package debugfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a path has no registered node.
var ErrNotFound = errors.New("debugfs: no such file")

// ErrNotSupported is returned when a node has no handler for the requested
// access (e.g. writing a read-only file).
var ErrNotSupported = errors.New("debugfs: operation not supported")

// ReadFunc produces the current contents of a node.
type ReadFunc func() ([]byte, error)

// WriteFunc applies a write to a node (e.g. "echo 1 > tracing_on").
type WriteFunc func([]byte) error

// node is one registered pseudo-file.
type node struct {
	read  ReadFunc
	write WriteFunc
}

// FS is an in-memory debugfs instance.
type FS struct {
	mu    sync.RWMutex
	nodes map[string]*node
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{nodes: make(map[string]*node)}
}

// clean canonicalizes a path: no leading/trailing slashes, single
// separators.
func clean(path string) string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return strings.Join(out, "/")
}

// Create registers a node at path with the given handlers. Either handler
// may be nil (the node is then write-only or read-only respectively, but
// not both nil).
func (fs *FS) Create(path string, read ReadFunc, write WriteFunc) error {
	cp := clean(path)
	if cp == "" {
		return fmt.Errorf("debugfs: empty path")
	}
	if read == nil && write == nil {
		return fmt.Errorf("debugfs: node %q needs at least one handler", cp)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, dup := fs.nodes[cp]; dup {
		return fmt.Errorf("debugfs: %q already exists", cp)
	}
	fs.nodes[cp] = &node{read: read, write: write}
	return nil
}

// Remove unregisters the node at path.
func (fs *FS) Remove(path string) error {
	cp := clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.nodes[cp]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, cp)
	}
	delete(fs.nodes, cp)
	return nil
}

// ReadFile runs the read handler of the node at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	cp := clean(path)
	fs.mu.RLock()
	n, ok := fs.nodes[cp]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, cp)
	}
	if n.read == nil {
		return nil, fmt.Errorf("%w: %q is write-only", ErrNotSupported, cp)
	}
	return n.read()
}

// WriteFile runs the write handler of the node at path.
func (fs *FS) WriteFile(path string, data []byte) error {
	cp := clean(path)
	fs.mu.RLock()
	n, ok := fs.nodes[cp]
	fs.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, cp)
	}
	if n.write == nil {
		return fmt.Errorf("%w: %q is read-only", ErrNotSupported, cp)
	}
	return n.write(data)
}

// Exists reports whether a node is registered at path.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.nodes[clean(path)]
	return ok
}

// List returns the sorted paths registered under prefix ("" lists all).
func (fs *FS) List(prefix string) []string {
	cp := clean(prefix)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.nodes {
		if cp == "" || p == cp || strings.HasPrefix(p, cp+"/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
