GO ?= go

.PHONY: check build crossbuild vet lint test race stress bench bench-smoke fmt

## check: the tier-1 gate — what CI runs.
check: vet lint build crossbuild test race

build:
	$(GO) build ./...

## crossbuild: compile for a non-linux GOOS so the portable mmap
## fallback (mapfile_fallback.go) stays buildable, not just the linux
## fast path the tests exercise.
crossbuild:
	GOOS=darwin $(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the repo-specific contract checkers (internal/lint): the
## determinism, view-pinning, typed-error, and no-alloc contracts,
## machine-checked over every package. Failures print file:line with
## the violated contract's name; suppressions are //fmeter: directives
## that always carry a reason.
lint:
	$(GO) run ./cmd/fmeter-vet ./...

test:
	$(GO) test ./...

## race: short race-detector pass over the packages with parallel fan-outs.
race:
	$(GO) test -race -count=1 ./internal/parallel/ ./internal/svm/ \
		./internal/crossval/ ./internal/cluster/ ./internal/core/ \
		./internal/vecmath/ ./internal/experiments/ ./internal/percpu/ \
		./internal/serve/

## stress: the concurrency property sweep (interleaved
## Add/Seal/Compact/TopK/Classify vs serialized execution against each
## pinned epoch view) and the SaveDir/LoadDir fault-injection matrices,
## under the race detector with iteration counts elevated via
## FMETER_STRESS. This is the long-soak proof behind the concurrent
## read/write contract; CI runs it on every push.
stress:
	FMETER_STRESS=1 $(GO) test -race -count=1 -timeout 20m ./internal/core/ \
		-run 'TestConcurrent|TestCloseUnderLoad|TestSaveDir|TestLoadDirFault' -v
	$(GO) test -race -count=1 ./internal/daemon/

## bench: the full reproduction benchmark harness.
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

## bench-smoke: a quick perf-trajectory record (BENCH_baseline.json for
## wall-clock, BENCH_indexed.json for the retrieval micro-benchmarks:
## Transform sparse vs dense view, exhaustive-scan vs inverted-index
## TopK — BenchmarkDBTopKSharded vs BenchmarkDBTopKIndexed — the batched
## BenchmarkDBTopKBatch/BenchmarkDBClassifyBatch 0-allocs records,
## BENCH_segments.json for the segmented-store persistence benchmark:
## full vs incremental SaveDir vs the v1 full rewrite,
## BENCH_postings.json for the posting-compression benchmark: index
## bytes flat vs block-compressed, TopK over both layouts, cold-load
## mapped vs rebuild vs v1, and BENCH_pruned.json for the pruning
## scaling ladder: TopK pruned vs unpruned vs theta=0.5 at
## 10k/100k/1M signatures plus the sealed-segment trajectory under the
## tier policy, and BENCH_concurrent.json for the mixed read/write
## benchmark: TopK p50/p99 read-only vs under a fixed-rate concurrent
## writer with live seals and tier compactions) so future PRs can
## compare like against like.
## BENCH_serve.json (via `-servejson`) is the serving-layer record:
## p50/p99 latency and achieved throughput vs offered QPS with
## micro-batch coalescing on (max-batch 64) vs the batch-size-1 direct
## baseline, on an in-process engine ladder and through loopback HTTP.
## `fmeter-bench -index=on|off` reproduces the scan/index comparison
## from the CLI and `-prune=on|off` the pruned/plain sealed walk;
## `-cpuprofile`/`-memprofile` wrap any run in pprof.
bench-smoke:
	$(GO) run ./cmd/fmeter-bench -run table4,fig5 -perclass 60 \
		-benchjson BENCH_baseline.json -out /tmp/fmeter-reports
	$(GO) run ./cmd/fmeter-bench -microjson BENCH_indexed.json
	$(GO) run ./cmd/fmeter-bench -segjson BENCH_segments.json
	$(GO) run ./cmd/fmeter-bench -postjson BENCH_postings.json
	$(GO) run ./cmd/fmeter-bench -prunejson BENCH_pruned.json
	$(GO) run ./cmd/fmeter-bench -mixedjson BENCH_concurrent.json
	$(GO) run ./cmd/fmeter-bench -servejson BENCH_serve.json

fmt:
	gofmt -l -w .
