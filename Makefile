GO ?= go

.PHONY: check build vet test race bench bench-smoke fmt

## check: the tier-1 gate — what CI runs.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: short race-detector pass over the packages with parallel fan-outs.
race:
	$(GO) test -race -count=1 ./internal/parallel/ ./internal/svm/ \
		./internal/crossval/ ./internal/cluster/ ./internal/core/ \
		./internal/vecmath/ ./internal/experiments/

## bench: the full reproduction benchmark harness.
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

## bench-smoke: a quick perf-trajectory record (BENCH_baseline.json for
## wall-clock, BENCH_sparse_first.json for the sparse-first
## micro-benchmarks: Transform sparse vs dense view, sharded DB TopK) so
## future PRs can compare like against like.
bench-smoke:
	$(GO) run ./cmd/fmeter-bench -run table4,fig5 -perclass 60 \
		-benchjson BENCH_baseline.json -out /tmp/fmeter-reports
	$(GO) run ./cmd/fmeter-bench -microjson BENCH_sparse_first.json

fmt:
	gofmt -l -w .
