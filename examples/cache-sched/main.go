// Cache-aware co-scheduling (§2.2/§6): meta-cluster workload syndrome
// centroids to find classes of behaviour that exercise the same kernel
// code paths, then group those workloads onto shared cache domains. Tasks
// that hit the same in-kernel data structures benefit from sharing an L3
// (Boyd-Wickizer et al., HotOS'09), and tf-idf signatures reveal exactly
// that affinity.
package main

import (
	"fmt"
	"log"
	"time"

	fmeter "repro"
)

const perWorkload = 20

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Five workload classes; scp and netperf share the TCP stack, dbench
	// and kcompile share the VFS/ext3 path, apachebench straddles both.
	type wl struct {
		spec   fmeter.WorkloadSpec
		driver fmeter.DriverVariant // 0 = none
	}
	workloads := []wl{
		{spec: fmeter.ScpWorkload()},
		{spec: fmeter.KcompileWorkload()},
		{spec: fmeter.DbenchWorkload()},
		{spec: fmeter.ApachebenchWorkload()},
		{spec: fmeter.NetperfWorkload(), driver: fmeter.Driver151},
	}

	var docs []*fmeter.Document
	for i, w := range workloads {
		sys, err := fmeter.New(fmeter.Config{Seed: int64(1000 * (i + 1))})
		if err != nil {
			return err
		}
		if w.driver != 0 {
			if err := sys.LoadDriver(w.driver); err != nil {
				return err
			}
		}
		batch, err := sys.Collect(w.spec, perWorkload, 10*time.Second, nil)
		if err != nil {
			return err
		}
		docs = append(docs, batch...)
	}

	sigs, _, err := fmeter.BuildSignatures(docs, 3815)
	if err != nil {
		return err
	}

	// Step 1: cluster each workload's signatures into one syndrome
	// centroid (K-means per class, K=1 — the class's mean behaviour).
	var centroids []fmeter.Vector
	var names []string
	for _, w := range workloads {
		var own []fmeter.Signature
		for _, s := range sigs {
			if s.Label == w.spec.Name {
				own = append(own, s)
			}
		}
		res, err := fmeter.ClusterSignatures(own, 1, 9)
		if err != nil {
			return err
		}
		centroids = append(centroids, res.Centroids[0])
		names = append(names, w.spec.Name)
	}

	// Step 2: meta-cluster the centroids into as many groups as there
	// are cache domains (the R710 has two sockets, i.e. two L3 domains).
	const cacheDomains = 2
	assign, err := fmeter.MetaClusterCentroids(centroids, cacheDomains, 11)
	if err != nil {
		return err
	}

	fmt.Println("cache-domain assignment from signature meta-clustering:")
	for domain := 0; domain < cacheDomains; domain++ {
		fmt.Printf("  L3 domain %d:", domain)
		for i, a := range assign {
			if a == domain {
				fmt.Printf(" %s", names[i])
			}
		}
		fmt.Println()
	}

	// Step 3: show the pairwise affinity that drove the grouping.
	fmt.Println("\npairwise centroid cosine similarity (higher = same kernel paths):")
	cos := fmeter.CosineMetric()
	for i := range centroids {
		for j := i + 1; j < len(centroids); j++ {
			sim, err := cos.Score(centroids[i], centroids[j])
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s x %-12s %.3f\n", names[i], names[j], sim)
		}
	}
	return nil
}
