// Quickstart: collect low-level system signatures from two workloads,
// embed them into the tf-idf vector space, and query a signature database
// by similarity — the end-to-end Fmeter pipeline in ~60 lines.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	fmeter "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Boot a simulated monitored machine with the Fmeter tracer: every
	// core-kernel function call is counted in per-CPU slots.
	sys, err := fmeter.New(fmeter.Config{Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("instrumented kernel functions: %d\n", sys.Dim())

	// The logging daemon reads the counters through debugfs every 10
	// seconds; each interval's count difference is one "document".
	var docs []*fmeter.Document
	for _, spec := range []fmeter.WorkloadSpec{fmeter.ScpWorkload(), fmeter.DbenchWorkload()} {
		batch, err := sys.Collect(spec, 15, 10*time.Second, nil)
		if err != nil {
			return err
		}
		fmt.Printf("collected %2d signatures under %s\n", len(batch), spec.Name)
		docs = append(docs, batch...)
	}

	// Embed: tf-idf over the corpus, then L2 normalization (§2.1).
	sigs, model, err := fmeter.BuildSignatures(docs, sys.Dim())
	if err != nil {
		return err
	}
	fmt.Printf("tf-idf model fitted over %d documents (dim %d)\n", len(sigs), model.Dim())

	// Index all but one signature in a labeled database — sharded four
	// ways, as an operator's long-lived store would be — then retrieve
	// the held-out one by similarity. Queries use the signatures'
	// canonical sparse form and cost O(nnz) per stored signature.
	db, err := fmeter.NewDB(sys.Dim(), fmeter.WithShards(4))
	if err != nil {
		return err
	}
	query, rest := sigs[0], sigs[1:]
	if err := db.AddAll(rest); err != nil {
		return err
	}
	for _, metric := range []fmeter.Metric{fmeter.CosineMetric(), fmeter.EuclideanMetric()} {
		hits, err := db.TopKSparse(query.W, 3, metric)
		if err != nil {
			return err
		}
		fmt.Printf("\nquery %s (%s) — top 3 by %s:\n", query.DocID, query.Label, metric.Name)
		for _, h := range hits {
			fmt.Printf("  %-12s label=%-8s score=%.4f\n", h.Signature.DocID, h.Signature.Label, h.Score)
		}
	}

	// Majority-vote retrieval classification (§2.2's similarity search).
	label, err := db.ClassifySparse(query.W, 5, fmeter.EuclideanMetric())
	if err != nil {
		return err
	}
	fmt.Printf("\n5-NN classification of %s: %s (truth: %s)\n", query.DocID, label, query.Label)

	// The database survives restarts: snapshot, reload (re-sharding is
	// free — results are identical at any shard count), and re-query.
	var snap bytes.Buffer
	if err := fmeter.WriteDBSnapshot(&snap, db); err != nil {
		return err
	}
	restored, err := fmeter.ReadDBSnapshot(&snap, 2)
	if err != nil {
		return err
	}
	label2, err := restored.ClassifySparse(query.W, 5, fmeter.EuclideanMetric())
	if err != nil {
		return err
	}
	fmt.Printf("after snapshot/reload (%d -> %d shards): %s\n", db.Shards(), restored.Shards(), label2)

	// For an on-disk store, prefer the v2 snapshot directory: SaveDB
	// writes atomically (a crash never corrupts the store) and re-saves
	// only the segments that changed since the last save, so a
	// long-lived operator DB saves in O(new data).
	dir, err := os.MkdirTemp("", "fmeter-quickstart-db-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "db")
	// Seal before the save: sealed segments re-encode their posting
	// lists into the block-compressed form (several times smaller
	// resident, persisted directly so reopening maps postings instead of
	// rebuilding them) — queries stay bit-identical.
	before := db.IndexBytes()
	db.Seal()
	fmt.Printf("sealed store: resident index %d -> %d bytes\n", before, db.IndexBytes())
	if err := fmeter.SaveDB(store, db); err != nil {
		return err
	}
	if err := db.Add(query); err != nil { // one new signature...
		return err
	}
	if err := fmeter.SaveDB(store, db); err != nil { // ...is all this save writes
		return err
	}
	// Reopen with WithMapped: sealed posting lists are served straight
	// off read-only mappings of the segment files (page cache, not
	// heap), so the cold open skips the big read and a corpus larger
	// than RAM stays queryable. Results are bit-identical; Close
	// releases the mappings.
	reopened, err := fmeter.OpenDB(store, fmeter.WithMapped(true))
	if err != nil {
		return err
	}
	defer reopened.Close()
	fmt.Printf("incremental on-disk store: %d signatures across %d segment files (%d posting bytes mapped, %d on heap)\n",
		reopened.Len(), reopened.Segments(), reopened.MappedBytes(), reopened.IndexBytes())
	return nil
}
