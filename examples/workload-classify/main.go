// Workload classification (the Table 4 scenario): train an SVM on labeled
// signatures of three workloads and classify held-out intervals. This is
// the paper's envisioned operator loop — label signatures of known
// behaviour once, then recognize future instances automatically.
package main

import (
	"fmt"
	"log"
	"time"

	fmeter "repro"
)

const (
	perClass = 40
	holdout  = 8 // last intervals of each class held out for testing
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	specs := []fmeter.WorkloadSpec{
		fmeter.ScpWorkload(),
		fmeter.KcompileWorkload(),
		fmeter.DbenchWorkload(),
	}

	// Collect each workload on its own machine instance, "without
	// interference from each-other" (§4.2.1).
	var docs []*fmeter.Document
	for i, spec := range specs {
		sys, err := fmeter.New(fmeter.Config{Seed: int64(100 * (i + 1))})
		if err != nil {
			return err
		}
		batch, err := sys.Collect(spec, perClass, 10*time.Second, nil)
		if err != nil {
			return err
		}
		docs = append(docs, batch...)
		fmt.Printf("collected %d signatures for %s\n", len(batch), spec.Name)
	}

	sigs, _, err := fmeter.BuildSignatures(docs, 3815)
	if err != nil {
		return err
	}

	// Split train/test per class: the first perClass-holdout intervals
	// train, the rest test.
	var train, test []fmeter.Signature
	counts := map[string]int{}
	for _, s := range sigs {
		counts[s.Label]++
		if counts[s.Label] <= perClass-holdout {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}

	// One one-vs-rest SVM per workload (the paper's binary classifier
	// applied to each grouping).
	classifiers := map[string]*fmeter.Classifier{}
	for _, spec := range specs {
		clf, err := fmeter.TrainClassifier(train, spec.Name, 10, 7)
		if err != nil {
			return err
		}
		classifiers[spec.Name] = clf
	}

	// Classify the held-out signatures by the highest decision score.
	correct := 0
	confusion := map[string]map[string]int{}
	for _, s := range test {
		best, bestScore := "", 0.0
		for name, clf := range classifiers {
			if _, score := clf.Matches(s); best == "" || score > bestScore {
				best, bestScore = name, score
			}
		}
		if confusion[s.Label] == nil {
			confusion[s.Label] = map[string]int{}
		}
		confusion[s.Label][best]++
		if best == s.Label {
			correct++
		}
	}
	fmt.Printf("\nheld-out accuracy: %d/%d (%.1f%%)\n", correct, len(test), 100*float64(correct)/float64(len(test)))
	fmt.Println("confusion (truth -> predicted):")
	for _, spec := range specs {
		fmt.Printf("  %-10s %v\n", spec.Name, confusion[spec.Name])
	}

	// Clustering view of the same data (the §4.2.2 comparison): K-means
	// with K = true class count.
	res, err := fmeter.ClusterSignatures(sigs, len(specs), 3)
	if err != nil {
		return err
	}
	fmt.Printf("\nK-means (K=%d) purity over all %d signatures: %.3f\n", len(specs), len(sigs), res.Purity)
	return nil
}
