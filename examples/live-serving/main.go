// Live serving: run the logging daemon and the HTTP query service
// against the SAME signature database at the same time — the always-on
// deployment posture the paper's §1 argues for. A warmup corpus fits
// the tf-idf model, then the collector streams every further interval
// straight into the DB (System.CollectStream, batched so each chunk
// lands with a single RCU publish) while HTTP clients answer
// nearest-neighbour queries against the live store through the
// micro-batch coalescing server (POST /v1/topk); the epoch-view
// concurrency contract guarantees each query sees a consistent
// committed state and never blocks the writer. A document is ingested
// over the wire too (POST /v1/ingest), /metrics is scraped, and the
// graceful drain leaves a crash-safe snapshot on disk that reopens.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	fmeter "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := fmeter.New(fmeter.Config{Seed: 7})
	if err != nil {
		return err
	}
	// Transient debugfs read hiccups retry behind jittered backoff and,
	// if the counters stay unreadable, skip the interval with a counted
	// warning instead of killing the daemon.
	sys.SetRetryPolicy(fmeter.RetryPolicy{Retries: 3, Backoff: 10 * time.Millisecond, Jitter: 0.5})
	sys.SetCollectorWarnf(log.Printf)

	// Warmup: fit the vector space on an initial corpus and seed the DB.
	warm, err := sys.Collect(fmeter.DbenchWorkload(), 12, 10*time.Second, nil)
	if err != nil {
		return err
	}
	sigs, model, err := fmeter.BuildSignatures(warm, sys.Dim())
	if err != nil {
		return err
	}
	db, err := fmeter.NewDB(sys.Dim(), fmeter.WithShards(2))
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.AddAll(sigs); err != nil {
		return err
	}

	// Front the live DB with the serving layer on a loopback port. The
	// server owns the graceful drain: its Shutdown drains the coalescer,
	// snapshots into SnapshotDir, and closes the DB.
	dir := filepath.Join(os.TempDir(), "fmeter-live-db")
	defer os.RemoveAll(dir)
	srv, err := fmeter.NewServer(db, model, fmeter.ServeConfig{SnapshotDir: dir, Warnf: log.Printf})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("warmup: %d signatures seed the live DB, serving at %s\n", db.Len(), base)

	// Query frontend: two HTTP clients hammer POST /v1/topk for the
	// whole streaming phase. Requests arriving close together coalesce
	// into one batched kernel call; each batch pins one epoch view, so
	// it reads a consistent store no matter what the writer, seals, or
	// compactions do concurrently.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var answered atomic.Int64
	queryErr := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for qi := 0; ; qi++ {
				select {
				case <-stop:
					return
				default:
				}
				body := topkBody(sigs[(qi+g)%len(sigs)], 3)
				resp, err := client.Post(base+"/v1/topk", "application/json", bytes.NewReader(body))
				if err != nil {
					queryErr <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					queryErr <- fmt.Errorf("topk status %d", resp.StatusCode)
					return
				}
				answered.Add(1)
			}
		}(g)
	}

	// Let the frontend prove itself before the stream competes for the
	// CPU: on a small machine the whole stream can finish before a
	// client goroutine gets scheduled.
	for answered.Load() < 32 {
		time.Sleep(time.Millisecond)
	}

	// The daemon streams live intervals into the DB the queries are
	// reading: collect, embed through the fitted model, publish — in
	// chunks of 4 so each chunk costs one epoch publish, not four.
	sys.SetIngestBatch(4)
	added, err := sys.CollectStream(fmeter.DbenchWorkload(), 8, 10*time.Second, model, db, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	select {
	case qerr := <-queryErr:
		return fmt.Errorf("concurrent query failed: %w", qerr)
	default:
	}
	fmt.Printf("streamed %d live intervals into the DB (now %d signatures) while answering %d HTTP queries\n",
		added, db.Len(), answered.Load())

	// Ingestion works over the wire too: POST a raw document and the
	// server embeds it through the same model and publishes it.
	buf, err := json.Marshal(map[string]any{"documents": []*fmeter.Document{warm[0]}})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	var ing struct {
		Added int `json:"added"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ing)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("HTTP ingest published %d document (DB now %d signatures)\n", ing.Added, db.Len())

	// The service meters itself: queries, batch-size distribution,
	// latency quantiles, queue depth, pruning aggregates.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var met struct {
		Queries   uint64  `json:"queries"`
		Batches   uint64  `json:"batches"`
		MeanBatch float64 `json:"mean_batch_size"`
		P50       float64 `json:"latency_p50_us"`
	}
	err = json.NewDecoder(resp.Body).Decode(&met)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("metrics: %d queries in %d batches (mean %.2f), p50 %.0f us\n",
		met.Queries, met.Batches, met.MeanBatch, met.P50)

	// Graceful drain: stop the listener (in-flight HTTP finishes), then
	// drain the coalescer, snapshot crash-safely, and close the DB.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	<-serveDone
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	reopened, err := fmeter.OpenDB(dir)
	if err != nil {
		return err
	}
	defer reopened.Close()
	fmt.Printf("snapshot at %s reopens with %d signatures\n", dir, reopened.Len())
	return nil
}

// topkBody renders one signature as a /v1/topk request body: the sparse
// vector in the wire's parallel-array form plus k.
func topkBody(sig fmeter.Signature, k int) []byte {
	var idx []int32
	var val []float64
	sig.W.ForEach(func(i int, x float64) {
		idx = append(idx, int32(i))
		val = append(val, x)
	})
	body, err := json.Marshal(map[string]any{
		"queries": []map[string]any{{"idx": idx, "val": val}},
		"k":       k,
	})
	if err != nil {
		panic(err) // static request shape, cannot fail
	}
	return body
}
