// Live serving: run the logging daemon and a query frontend against the
// SAME signature database at the same time — the always-on deployment
// posture the paper's §1 argues for. A warmup corpus fits the tf-idf
// model, then the collector streams every further interval straight
// into the DB (System.CollectStream) while concurrent goroutines answer
// nearest-neighbour queries against it; the epoch-view concurrency
// contract guarantees each query sees a consistent committed state and
// never blocks the writer. A crash-safe snapshot lands on disk at the
// end without pausing the readers.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	fmeter "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := fmeter.New(fmeter.Config{Seed: 7})
	if err != nil {
		return err
	}
	// Transient debugfs read hiccups retry behind jittered backoff and,
	// if the counters stay unreadable, skip the interval with a counted
	// warning instead of killing the daemon.
	sys.SetRetryPolicy(fmeter.RetryPolicy{Retries: 3, Backoff: 10 * time.Millisecond, Jitter: 0.5})
	sys.SetCollectorWarnf(log.Printf)

	// Warmup: fit the vector space on an initial corpus and seed the DB.
	warm, err := sys.Collect(fmeter.DbenchWorkload(), 12, 10*time.Second, nil)
	if err != nil {
		return err
	}
	sigs, model, err := fmeter.BuildSignatures(warm, sys.Dim())
	if err != nil {
		return err
	}
	db, err := fmeter.NewDB(sys.Dim(), fmeter.WithShards(2))
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.AddAll(sigs); err != nil {
		return err
	}
	fmt.Printf("warmup: %d signatures seed the live DB\n", db.Len())

	// Query frontend: two goroutines hammer the DB with similarity
	// queries for the whole streaming phase. Each query pins an epoch
	// view, so it reads a consistent store no matter what the writer,
	// seals, or compactions do concurrently.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var answered atomic.Int64
	queryErr := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for qi := 0; ; qi++ {
				select {
				case <-stop:
					return
				default:
				}
				q := sigs[(qi+g)%len(sigs)].W
				if _, err := db.TopKSparse(q, 3, fmeter.CosineMetric()); err != nil {
					queryErr <- err
					return
				}
				answered.Add(1)
			}
		}(g)
	}

	// The daemon streams live intervals into the DB the queries are
	// reading: collect, embed through the fitted model, Add — no pauses.
	added, err := sys.CollectStream(fmeter.DbenchWorkload(), 8, 10*time.Second, model, db, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	select {
	case qerr := <-queryErr:
		return fmt.Errorf("concurrent query failed: %w", qerr)
	default:
	}
	st := sys.CollectorStats()
	fmt.Printf("streamed %d live intervals into the DB (now %d signatures) while answering %d queries\n",
		added, db.Len(), answered.Load())
	fmt.Printf("collector degradation: %d retries, %d skipped intervals\n", st.Retries, st.SkippedIntervals)

	// Snapshot the live store crash-safely; replaced segment files are
	// only removed once no in-flight query can still reach them.
	dir := filepath.Join(os.TempDir(), "fmeter-live-db")
	defer os.RemoveAll(dir)
	if err := fmeter.SaveDB(dir, db); err != nil {
		return err
	}
	reopened, err := fmeter.OpenDB(dir)
	if err != nil {
		return err
	}
	defer reopened.Close()
	fmt.Printf("snapshot at %s reopens with %d signatures\n", dir, reopened.Len())
	return nil
}
