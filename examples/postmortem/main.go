// Post-mortem diagnosis (§1's motivation for continuous low-overhead
// logging): a machine logs signatures continuously; after a "crash", the
// surviving JSONL log is read back and the final intervals are diagnosed
// against a labeled history database — which behaviour was the system
// exhibiting right before it died?
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	fmeter "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Phase 1: build the operator's labeled history database from past
	// forensically identified runs (§2.2's envisioned environment).
	var history []*fmeter.Document
	for i, spec := range []fmeter.WorkloadSpec{
		fmeter.ScpWorkload(),
		fmeter.KcompileWorkload(),
		fmeter.DbenchWorkload(),
	} {
		sys, err := fmeter.New(fmeter.Config{Seed: int64(10 * (i + 1))})
		if err != nil {
			return err
		}
		docs, err := sys.Collect(spec, 20, 10*time.Second, nil)
		if err != nil {
			return err
		}
		history = append(history, docs...)
	}

	// Phase 2: the production machine runs with continuous logging. It
	// was serving dbench-like traffic when it "crashed"; only the JSONL
	// log survives. (The daemon writes each interval as soon as it is
	// collected, so the log is complete up to the last interval.)
	var survivingLog bytes.Buffer
	prod, err := fmeter.New(fmeter.Config{Seed: 99})
	if err != nil {
		return err
	}
	if _, err := prod.Collect(fmeter.DbenchWorkload(), 12, 10*time.Second, &survivingLog); err != nil {
		return err
	}
	fmt.Printf("surviving log: %d bytes of JSONL\n", survivingLog.Len())

	// Phase 3: post-mortem. Parse the log, embed everything in ONE
	// corpus (history + crash log) so idf weights are shared, and
	// diagnose the final intervals against the history database.
	crashDocs, err := fmeter.ReadDocuments(&survivingLog)
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d intervals from the crashed machine\n", len(crashDocs))

	// Strip the crash docs' labels: the operator doesn't know them.
	for _, d := range crashDocs {
		d.Label = ""
	}
	all := append(append([]*fmeter.Document{}, history...), crashDocs...)
	sigs, _, err := fmeter.BuildSignatures(all, 3815)
	if err != nil {
		return err
	}
	historySigs := sigs[:len(history)]
	crashSigs := sigs[len(history):]

	db, err := fmeter.NewDB(3815)
	if err != nil {
		return err
	}
	defer db.Close()
	for _, s := range historySigs {
		if err := db.Add(s); err != nil {
			return err
		}
	}

	votes := map[string]int{}
	fmt.Println("\ndiagnosis of the last 5 intervals before the crash:")
	last := crashSigs[len(crashSigs)-5:]
	// Label the suspect intervals in one batched pass over the indexed DB.
	queries := make([]*fmeter.Sparse, len(last))
	for i, s := range last {
		queries[i] = s.W
	}
	labels, err := fmeter.ClassifyBatch(db, queries, 7, fmeter.EuclideanMetric())
	if err != nil {
		return err
	}
	for i, s := range last {
		votes[labels[i]]++
		fmt.Printf("  %-16s -> %s\n", s.DocID, labels[i])
	}
	best, bestN := "", 0
	for l, n := range votes {
		if n > bestN {
			best, bestN = l, n
		}
	}
	fmt.Printf("\nverdict: the machine was running %q-like behaviour when it crashed\n", best)
	return nil
}
