// Driver anomaly detection (the Table 5 scenario): a NIC driver lives in
// an uninstrumented loadable module, so its functions never appear in the
// signature space — yet signatures of the core-kernel functions it calls
// are enough to detect that the driver was swapped for an older version or
// had LRO silently disabled (the paper's stand-in for a compromised
// module that raises DDoS propensity).
package main

import (
	"fmt"
	"log"
	"time"

	fmeter "repro"
)

const perVariant = 30

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// collect gathers netperf-receive signatures under one driver variant,
// labeling the documents with the variant name (the workload is identical
// in all three runs; only the loaded module differs).
func collect(v fmeter.DriverVariant, seed int64) ([]*fmeter.Document, error) {
	sys, err := fmeter.New(fmeter.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := sys.LoadDriver(v); err != nil {
		return nil, err
	}
	spec := fmeter.NetperfWorkload()
	spec.Name = v.String() // becomes the document label
	return sys.Collect(spec, perVariant, 10*time.Second, nil)
}

func run() error {
	// Baseline: the machine is known-good with driver 1.5.1 (LRO on).
	good, err := collect(fmeter.Driver151, 10)
	if err != nil {
		return err
	}
	// Incident 1: someone loaded the older 1.4.3 driver.
	old, err := collect(fmeter.Driver143, 20)
	if err != nil {
		return err
	}
	// Incident 2: same 1.5.1 driver, but LRO disabled at load time.
	nolro, err := collect(fmeter.Driver151NoLRO, 30)
	if err != nil {
		return err
	}

	// Relabel: operators only know "normal" vs "not normal" when
	// training; the incident labels are ground truth for scoring.
	docs := make([]*fmeter.Document, 0, 3*perVariant)
	docs = append(docs, good...)
	docs = append(docs, old...)
	docs = append(docs, nolro...)
	sigs, _, err := fmeter.BuildSignatures(docs, 3815)
	if err != nil {
		return err
	}

	normal := sigs[:perVariant]
	incidents := sigs[perVariant:]

	// Train a one-class-style detector: normal (+1) vs everything else
	// seen so far (-1). In the paper's setting both classes come from a
	// labeled history database.
	clf, err := fmeter.TrainClassifier(sigs, good[0].Label, 10, 7)
	if err != nil {
		return err
	}

	flagged := 0
	for _, s := range incidents {
		if match, _ := clf.Matches(s); !match {
			flagged++
		}
	}
	missed := 0
	for _, s := range normal {
		if match, _ := clf.Matches(s); !match {
			missed++
		}
	}
	fmt.Printf("anomalous intervals flagged: %d/%d\n", flagged, len(incidents))
	fmt.Printf("false alarms on normal intervals: %d/%d\n", missed, len(normal))

	// Which incident is it? Nearest-centroid syndrome lookup (§2.2).
	db, err := fmeter.NewDB(3815)
	if err != nil {
		return err
	}
	defer db.Close()
	for _, s := range sigs {
		if err := db.Add(s); err != nil {
			return err
		}
	}
	for _, probe := range []fmeter.Signature{incidents[0], incidents[len(incidents)-1]} {
		label, err := db.ClassifySparse(probe.W, 7, fmeter.EuclideanMetric())
		if err != nil {
			return err
		}
		fmt.Printf("probe %-40s diagnosed as %q (truth %q)\n", probe.DocID, label, probe.Label)
	}

	// The three variants also separate cleanly without labels.
	res, err := fmeter.ClusterSignatures(sigs, 3, 5)
	if err != nil {
		return err
	}
	fmt.Printf("unsupervised K-means (K=3) purity across variants: %.3f\n", res.Purity)
	return nil
}
