// Package fmeter is a reproduction of "Fmeter: Extracting Indexable
// Low-level System Signatures by Counting Kernel Function Calls" (Marian,
// Lee, Weatherspoon, Sagar — Middleware 2012).
//
// Fmeter counts every kernel function invocation with per-CPU counters and
// embeds the per-interval counts into the classical vector space model:
// each monitoring interval becomes a tf-idf weight vector — an indexable,
// low-level system signature amenable to clustering, classification, and
// similarity search.
//
// Because a real patched kernel is not available here, the package drives
// a simulated monolithic kernel (see internal/kernel and DESIGN.md for the
// substitution argument): a deterministic ~3815-function symbol table,
// syscall-level operations with realistic call paths, loadable-module
// semantics, and the three instrumentation backends the paper compares
// (vanilla, Ftrace's ring-buffer function tracer, and Fmeter's counter
// stubs).
//
// # Quick start
//
// Signatures are sparse-first: Signature.W holds the canonical sorted
// sparse form, and every pipeline stage — embedding, the sharded
// database, batched classification — runs in O(nnz) per signature.
//
//	sys, _ := fmeter.New(fmeter.Config{Tracer: fmeter.TracerFmeter, Seed: 1})
//	scp, _ := sys.Collect(fmeter.ScpWorkload(), 50, 10*time.Second, nil)
//	dbench, _ := sys.Collect(fmeter.DbenchWorkload(), 50, 10*time.Second, nil)
//	sigs, model, _ := fmeter.BuildSignatures(append(scp, dbench...), sys.Dim())
//
//	// Sharded similarity database; cosine/Euclidean queries ride a
//	// per-shard inverted index, and snapshots survive restarts.
//	db, _ := fmeter.NewDB(sys.Dim(), fmeter.WithShards(4))
//	_ = db.AddAll(sigs[1:])
//	hits, _ := db.TopKSparse(sigs[0].W, 3, fmeter.EuclideanMetric())
//
//	// Batched retrieval amortizes the per-query scratch to zero allocs.
//	batch, _ := fmeter.TopKBatch(db, []*fmeter.Sparse{sigs[0].W}, 3, fmeter.EuclideanMetric())
//	_ = batch
//
//	// Batched classification amortizes the per-query kernel work (the
//	// corpus holds both classes, as a binary SVM requires).
//	clf, _ := fmeter.TrainClassifier(sigs, "scp", 10, 1)
//	scores := clf.ScoreBatch(sigs)
//
//	_ = hits
//	_ = scores
//
// See examples/ for complete programs.
package fmeter

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/debugfs"
	"repro/internal/driver"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/svm"
	"repro/internal/trace"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// Re-exported core types: the vector space model's vocabulary.
type (
	// Document is one monitoring interval of raw function counts.
	Document = core.Document
	// Signature is a document embedded as a tf-idf weight vector.
	Signature = core.Signature
	// Corpus is a collection of documents over a fixed term space.
	Corpus = core.Corpus
	// Model is a fitted tf-idf weighting (the learned idf vector).
	Model = core.Model
	// DB is a labeled signature database with similarity search.
	DB = core.DB
	// Metric scores signature similarity or distance.
	Metric = core.Metric
	// SearchResult is one similarity-query hit.
	SearchResult = core.SearchResult
	// DimensionError is the typed error for mis-sized DB inputs.
	DimensionError = core.DimensionError
	// ConfigError is the typed error for out-of-range construction and
	// configuration parameters (shard count, dimension, tier fan-out).
	ConfigError = core.ConfigError
	// PruneStats are one query's threshold-pruning counters (see
	// db.TopKSparseStats), the inspectable side of WithPruning A/Bs.
	PruneStats = core.PruneStats
	// CompactionPolicy configures background size-tiered compaction
	// (see WithCompactionPolicy / db.SetCompactionPolicy).
	CompactionPolicy = core.CompactionPolicy
	// SnapshotError is the typed error for corrupt, missing, or
	// unreadable v2 snapshot-directory files; it names the offending
	// file.
	SnapshotError = core.SnapshotError
	// Vector is a dense signature vector.
	Vector = vecmath.Vector
	// Sparse is the canonical sparse signature vector (Signature.W).
	Sparse = vecmath.Sparse
	// WorkloadSpec declares a workload's kernel-operation mix.
	WorkloadSpec = workload.Spec
	// DriverVariant selects a myri10ge driver scenario (Table 5).
	DriverVariant = driver.Variant
	// RetryPolicy governs the collector's handling of transient debugfs
	// read failures (see System.SetRetryPolicy).
	RetryPolicy = daemon.RetryPolicy
	// CollectorStats are the collector's degradation counters: reads
	// that needed a retry, intervals skipped after retries ran out.
	CollectorStats = daemon.Stats
	// Server is the HTTP/JSON serving layer: batched query + ingest
	// endpoints over a live DB with adaptive micro-batch coalescing,
	// bounded-queue backpressure, and graceful shutdown (see NewServer).
	Server = serve.Server
	// ServeConfig tunes the serving layer (batch/queue/backpressure
	// knobs); the zero value gets production defaults.
	ServeConfig = serve.Config
	// ServeMetrics is the GET /metrics payload (QPS, queue depth,
	// batch-size histogram, latency quantiles, PruneStats aggregates).
	ServeMetrics = serve.MetricsSnapshot
	// OverloadError is the typed rejection a full request queue returns;
	// it maps to HTTP 429 + Retry-After.
	OverloadError = serve.OverloadError
)

// Driver variants of the paper's subtle-behaviour experiment.
const (
	Driver151      = driver.V151
	Driver143      = driver.V143
	Driver151NoLRO = driver.V151NoLRO
)

// Tracer selects the instrumentation configuration.
type Tracer int

// The paper's three kernel configurations.
const (
	TracerVanilla Tracer = iota + 1
	TracerFtrace
	TracerFmeter
)

// String names the tracer.
func (t Tracer) String() string {
	switch t {
	case TracerVanilla:
		return "vanilla"
	case TracerFtrace:
		return "ftrace"
	case TracerFmeter:
		return "fmeter"
	default:
		return fmt.Sprintf("tracer(%d)", int(t))
	}
}

// Config configures a simulated monitored machine.
type Config struct {
	// NumCPU defaults to 16, the paper's testbed width.
	NumCPU int
	// Tracer defaults to TracerFmeter.
	Tracer Tracer
	// Seed drives all stochastic behaviour; runs are reproducible.
	Seed int64
	// CountJitter / LatencyJitter are relative noise levels; negative
	// disables, zero uses the evaluation defaults (0.02 / 0.01).
	CountJitter   float64
	LatencyJitter float64
	// Workers bounds the host-side fan-out of the learning helpers
	// invoked through this system's Options (0 = one worker per host
	// CPU, <0 = sequential). Results are bit-identical at any worker
	// count; see DESIGN-PERF.md.
	Workers int
	// Sparse enables the O(nnz) norm-cached K-means assignment step in
	// the clustering helpers (signature math itself is sparse-first
	// everywhere).
	Sparse bool
	// Shards is the signature-database shard count used by NewDB through
	// Options (0 = single shard). TopK results are identical at any
	// shard count; shards bound the scan fan-out.
	Shards int
}

// Option tunes the host-side performance of the learning helpers
// (TrainClassifier, ClusterSignatures, MetaClusterCentroids).
type Option func(*perfOpts)

type perfOpts struct {
	workers    int
	sparse     bool
	shards     int
	segSize    int
	noIndex    bool
	noPrune    bool
	pruneTheta float64
	tierFanout int
	mapped     bool
}

// WithWorkers bounds the helper's worker-pool fan-out: 0 (the default)
// means one worker per host CPU, negative forces sequential execution.
// The computed result is bit-identical at any setting.
func WithWorkers(n int) Option { return func(o *perfOpts) { o.workers = n } }

// WithSparse toggles the O(nnz) norm-cached K-means assignment step in
// the clustering helpers. Distances agree with the dense path to ~1e-9
// relative.
func WithSparse(on bool) Option { return func(o *perfOpts) { o.sparse = on } }

// WithShards sets the shard count for NewDB (n < 1 means one shard).
// Queries return identical results at any shard count; shards bound the
// TopK scan fan-out across the worker pool.
func WithShards(n int) Option { return func(o *perfOpts) { o.shards = n } }

// WithIndex routes NewDB queries through the per-shard inverted index
// (the default) or forces the exhaustive scan, for A/B comparison —
// results are bit-identical either way. Cosine and Euclidean ride the
// index; other metrics always scan.
func WithIndex(on bool) Option { return func(o *perfOpts) { o.noIndex = !on } }

// WithSegmentSize sets NewDB's per-shard seal threshold (n < 1 keeps
// the default): an active segment rolling past it is sealed, which
// re-encodes its posting lists into the block-compressed form (several
// times smaller resident, persisted directly by SaveDB) — query
// results are bit-identical at any setting. Call db.Seal() to compress
// the current actives explicitly, e.g. before a save.
func WithSegmentSize(n int) Option { return func(o *perfOpts) { o.segSize = n } }

// WithPruning routes NewDB's indexed cosine/Euclidean queries through
// the threshold-pruned walk (the default) or forces the plain
// accumulate-everything indexed walk, for A/B comparison — exact-mode
// results are bit-identical either way, the pruned walk just skips
// posting blocks that provably cannot change the top k. Per-query
// skip counters are available through db.TopKSparseStats /
// db.ClassifySparseStats (see PruneStats).
func WithPruning(on bool) Option { return func(o *perfOpts) { o.noPrune = !on } }

// WithPruneTheta sets the approximate pruning mode: remainder bounds
// are scaled by theta before being compared against the current k-th
// best score, so theta in (0, 1) prunes more aggressively with a
// bounded recall loss. 1 (the default) is exact; values outside (0, 1]
// clamp to 1.
func WithPruneTheta(theta float64) Option { return func(o *perfOpts) { o.pruneTheta = theta } }

// WithCompactionPolicy enables NewDB's background size-tiered
// compaction: whenever a segment seals, runs of tierFanout adjacent
// same-tier sealed segments are spliced into the next tier, keeping the
// sealed-segment count logarithmic in the store size under continuous
// ingestion — no manual Compact calls. tierFanout < 1 leaves the policy
// off; 1 is rejected by NewDB (a typed *ConfigError). Query results are
// bit-identical with any policy.
func WithCompactionPolicy(tierFanout int) Option {
	return func(o *perfOpts) { o.tierFanout = tierFanout }
}

// WithMapped makes OpenDB serve sealed posting lists directly off
// read-only mappings of the snapshot's segment files instead of copying
// them onto the heap: cold opens skip the big read, the page cache owns
// the bytes (so corpora larger than RAM stay queryable), and results
// are bit-identical to a resident open. All integrity checks (per-file
// CRC, manifest cross-checks, structural validation) still run. Call
// db.Close() when done to release the mappings, and do not modify or
// delete the snapshot files underneath a mapped DB. On platforms
// without mmap support the option silently degrades to the resident
// read path. Only meaningful for OpenDB on a v2 snapshot directory.
func WithMapped(on bool) Option { return func(o *perfOpts) { o.mapped = on } }

func applyOpts(opts []Option) perfOpts {
	var o perfOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// System is one simulated machine wired for signature collection.
type System struct {
	st  *kernel.SymbolTable
	cat *kernel.Catalog
	eng *kernel.Engine
	fs  *debugfs.FS
	fm  *trace.Fmeter
	ft  *trace.Ftrace
	col *daemon.Collector
	cfg Config
}

// New boots a simulated machine.
func New(cfg Config) (*System, error) {
	if cfg.NumCPU == 0 {
		cfg.NumCPU = 16
	}
	if cfg.Tracer == 0 {
		cfg.Tracer = TracerFmeter
	}
	jitter := func(v, def float64) float64 {
		switch {
		case v < 0:
			return 0
		case v == 0:
			return def
		default:
			return v
		}
	}
	st := kernel.NewSymbolTable()
	cat, err := kernel.NewCatalog(st)
	if err != nil {
		return nil, err
	}
	s := &System{st: st, cat: cat, fs: debugfs.New(), cfg: cfg}
	var backend kernel.Backend
	switch cfg.Tracer {
	case TracerVanilla:
		backend = kernel.NopBackend()
	case TracerFtrace:
		ft, err := trace.NewFtrace(st, cfg.NumCPU, 0)
		if err != nil {
			return nil, err
		}
		if err := ft.RegisterDebugfs(s.fs); err != nil {
			return nil, err
		}
		s.ft = ft
		backend = ft
	case TracerFmeter:
		fm, err := trace.NewFmeter(st, cfg.NumCPU)
		if err != nil {
			return nil, err
		}
		if err := fm.RegisterDebugfs(s.fs); err != nil {
			return nil, err
		}
		s.fm = fm
		backend = fm
	default:
		return nil, fmt.Errorf("fmeter: unknown tracer %v", cfg.Tracer)
	}
	eng, err := kernel.NewEngine(cat, kernel.EngineConfig{
		NumCPU:        cfg.NumCPU,
		Backend:       backend,
		Seed:          cfg.Seed,
		CountJitter:   jitter(cfg.CountJitter, 0.02),
		LatencyJitter: jitter(cfg.LatencyJitter, 0.01),
	})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	if s.fm != nil {
		col, err := daemon.NewCollector(s.fs, st)
		if err != nil {
			return nil, err
		}
		s.col = col
	}
	return s, nil
}

// Options returns the performance options implied by the system's Config
// (Workers, Sparse), for passing to the learning helpers:
//
//	res, err := fmeter.ClusterSignatures(sigs, 3, 1, sys.Options()...)
func (s *System) Options() []Option {
	return []Option{WithWorkers(s.cfg.Workers), WithSparse(s.cfg.Sparse), WithShards(s.cfg.Shards)}
}

// Dim returns the signature dimension: the number of instrumented
// core-kernel functions.
func (s *System) Dim() int { return s.st.Len() }

// FunctionNames returns the instrumented function names indexed by
// signature dimension.
func (s *System) FunctionNames() []string { return s.st.Names() }

// Tracer returns the active instrumentation configuration.
func (s *System) Tracer() Tracer { return s.cfg.Tracer }

// LoadDriver loads a myri10ge variant as an uninstrumented runtime module
// (its functions never appear in signatures; only its calls into the core
// kernel do).
func (s *System) LoadDriver(v DriverVariant) error {
	mod, err := driver.New(s.st, v)
	if err != nil {
		return err
	}
	return s.eng.RegisterModule(mod)
}

// Collect runs the logging daemon for n intervals of the given length
// under the workload, returning the labeled interval documents. If w is
// non-nil every document is also streamed to it as JSON Lines. Requires
// the Fmeter tracer.
func (s *System) Collect(spec WorkloadSpec, n int, interval time.Duration, w io.Writer) ([]*Document, error) {
	if s.col == nil {
		return nil, fmt.Errorf("fmeter: Collect requires the Fmeter tracer, have %v", s.cfg.Tracer)
	}
	run, err := workload.NewRunner(s.eng, spec, s.cfg.Seed+101)
	if err != nil {
		return nil, err
	}
	body := func(d time.Duration) error {
		_, err := run.RunInterval(d)
		return err
	}
	return s.col.CollectSeries(spec.Name, spec.Name, n, interval, body, w)
}

// CollectStream runs the logging daemon for n intervals and feeds each
// interval straight into a live signature database: every document is
// embedded through the fitted tf-idf model, L2-normalized, and Added to
// db the moment its interval ends. The DB's epoch-view concurrency
// contract makes this safe while other goroutines query db — the
// always-on serving posture (collect once to fit the model, then stream
// forever). Intervals whose counter reads stay unavailable through the
// retry schedule are skipped with a counted warning (CollectorStats)
// instead of killing the run. Returns the number of signatures added.
// Requires the Fmeter tracer.
func (s *System) CollectStream(spec WorkloadSpec, n int, interval time.Duration, model *Model, db *DB, w io.Writer) (int, error) {
	if s.col == nil {
		return 0, fmt.Errorf("fmeter: CollectStream requires the Fmeter tracer, have %v", s.cfg.Tracer)
	}
	run, err := workload.NewRunner(s.eng, spec, s.cfg.Seed+101)
	if err != nil {
		return 0, err
	}
	body := func(d time.Duration) error {
		_, err := run.RunInterval(d)
		return err
	}
	return s.col.CollectStream(spec.Name, spec.Name, n, interval, body, model, db, w)
}

// SetIngestBatch makes CollectStream buffer up to n embedded signatures
// and publish them with one AddAll (one epoch-view publication) instead
// of one Add per signature — the amortized live-ingestion path. n <= 1
// restores per-signature publishes. Requires the Fmeter tracer (a no-op
// otherwise).
func (s *System) SetIngestBatch(n int) {
	if s.col != nil {
		s.col.SetIngestBatch(n)
	}
}

// SetRetryPolicy replaces the collector's schedule for transient
// debugfs read failures: each failed read retries Retries more times
// behind jittered exponential backoff, and an interval still
// unavailable after that is skipped with a counted warning rather than
// aborting the collection. Retries <= 0 restores fail-fast reads.
// Requires the Fmeter tracer (a no-op otherwise).
func (s *System) SetRetryPolicy(p RetryPolicy) {
	if s.col != nil {
		s.col.SetRetryPolicy(p)
	}
}

// SetCollectorWarnf installs the sink for the collector's counted
// warnings (retries, skipped intervals); a daemon typically passes
// log.Printf. nil silences them.
func (s *System) SetCollectorWarnf(fn func(format string, args ...any)) {
	if s.col != nil {
		s.col.SetWarnf(fn)
	}
}

// CollectorStats returns the collector's degradation counters so far.
func (s *System) CollectorStats() CollectorStats {
	if s.col == nil {
		return CollectorStats{}
	}
	return s.col.Stats()
}

// RunOp executes a catalog operation in a closed loop and returns the
// virtual elapsed kernel time — the micro-benchmark primitive of Table 1.
func (s *System) RunOp(name string, times int) (time.Duration, error) {
	return s.eng.ExecOpName(name, times)
}

// KernelTime returns total virtual kernel-mode time.
func (s *System) KernelTime() time.Duration { return s.eng.KernelTime() }

// UserTime returns total virtual user-mode time.
func (s *System) UserTime() time.Duration { return s.eng.UserTime() }

// Snapshot returns the current per-function invocation totals (Fmeter
// tracer only).
func (s *System) Snapshot() ([]uint64, error) {
	if s.fm == nil {
		return nil, fmt.Errorf("fmeter: Snapshot requires the Fmeter tracer, have %v", s.cfg.Tracer)
	}
	return s.fm.Snapshot(), nil
}

// Workload constructors (§4's evaluation workloads).

// ScpWorkload is the secure-copy workload.
func ScpWorkload() WorkloadSpec { return workload.Scp(16) }

// KcompileWorkload is the kernel-compile workload.
func KcompileWorkload() WorkloadSpec { return workload.Kcompile(16) }

// DbenchWorkload is the disk-benchmark workload.
func DbenchWorkload() WorkloadSpec { return workload.Dbench(16) }

// ApachebenchWorkload is the HTTP macro-benchmark workload.
func ApachebenchWorkload() WorkloadSpec { return workload.Apachebench(16) }

// NetperfWorkload is the TCP-stream receive workload; load a driver
// variant first.
func NetperfWorkload() WorkloadSpec { return driver.NetperfRx(16) }

// BootWorkload is the boot phase of Figure 1.
func BootWorkload() WorkloadSpec { return workload.Boot() }

// Signature pipeline helpers.

// NewCorpus creates an empty corpus over dim terms.
func NewCorpus(dim int) (*Corpus, error) { return core.NewCorpus(dim) }

// BuildSignatures builds a corpus from documents, fits the tf-idf model,
// embeds every document, and L2-normalizes the signatures into the unit
// ball (the paper's preprocessing for learning).
func BuildSignatures(docs []*Document, dim int) ([]Signature, *Model, error) {
	corpus, err := core.NewCorpus(dim)
	if err != nil {
		return nil, nil, err
	}
	for _, d := range docs {
		if err := corpus.Add(d); err != nil {
			return nil, nil, err
		}
	}
	sigs, model, err := corpus.Signatures()
	if err != nil {
		return nil, nil, err
	}
	core.Normalize(sigs)
	return sigs, model, nil
}

// NewDB creates an empty labeled signature database. Pass WithShards to
// split the store over N shards (bounding TopK's scan fan-out) and
// WithWorkers to bound the scan worker pool; query results are identical
// at any setting.
//
// The database is safe for fully concurrent use: queries pin an
// immutable epoch view and run against it without blocking writers,
// while Add/AddAll/Seal/Compact/SaveDB serialize among themselves and
// publish atomically. A query that pinned its view before a concurrent
// write returns exactly what a serialized execution against that state
// would — bit-identical, under any interleaving. db.Close() drains
// in-flight queries before releasing resources; operations arriving
// after Close return a typed *ConfigError.
func NewDB(dim int, opts ...Option) (*DB, error) {
	o := applyOpts(opts)
	shards := o.shards
	if shards < 1 {
		shards = 1
	}
	db, err := core.NewShardedDB(dim, shards)
	if err != nil {
		return nil, err
	}
	return configureDB(db, o)
}

// configureDB applies the perf options shared by NewDB and OpenDB to a
// constructed or loaded database. With zero-value options every setter
// is a keep-the-default no-op, so plain opens behave exactly as before.
// On error the DB is closed first, so a mapped load never leaks its
// file mappings.
func configureDB(db *DB, o perfOpts) (*DB, error) {
	db.SetWorkers(o.workers)
	db.SetIndexed(!o.noIndex)
	db.SetSegmentSize(o.segSize)
	db.SetPruned(!o.noPrune)
	if o.pruneTheta != 0 {
		db.SetPruneTheta(o.pruneTheta)
	}
	if o.tierFanout > 0 {
		if err := db.SetCompactionPolicy(core.CompactionPolicy{TierFanout: o.tierFanout}); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// TopKBatch answers many similarity queries in one call, fanning them
// over the database's worker pool with per-worker scratch so a
// steady-state query stream allocates nothing. out[i] is bit-identical
// to db.TopKSparse(queries[i], ...) at any worker count. Cosine and
// Euclidean queries ride the per-shard inverted index.
func TopKBatch(db *DB, queries []*Sparse, k int, metric Metric) ([][]SearchResult, error) {
	return db.TopKBatch(queries, k, metric)
}

// ClassifyBatch is the batched k-NN labeler: out[i] is bit-identical to
// db.ClassifySparse(queries[i], ...) at any worker count.
func ClassifyBatch(db *DB, queries []*Sparse, k int, metric Metric) ([]string, error) {
	return db.ClassifyBatch(queries, k, metric)
}

// SignatureFromDense wraps a dense weight vector as a signature.
func SignatureFromDense(docID, label string, v Vector) Signature {
	return core.SignatureFromDense(docID, label, v)
}

// NewServer builds the HTTP/JSON serving layer over db: POST /v1/topk,
// /v1/classify, /v1/ingest plus GET /healthz and /metrics, with an
// adaptive micro-batch coalescer draining a bounded queue into the
// 0-alloc batched kernels (coalesced responses are bit-identical to
// per-request queries), 429 + Retry-After on overload, periodic
// incremental snapshots when cfg.SnapshotDir is set, and a Shutdown
// that drains in-flight batches before closing the DB. model may be
// nil for query-only deployments (ingest then answers 503). Mount
// srv.Handler() on an http.Server; the server owns db from here on —
// Shutdown closes it.
func NewServer(db *DB, model *Model, cfg ServeConfig) (*Server, error) {
	return serve.New(db, model, cfg)
}

// SaveDB persists a signature database at path in the v2 snapshot
// directory format: a manifest plus one CRC-checked file per segment,
// each written atomically (temp + fsync + rename), with only the
// segments dirtied since the last save rewritten — a long-lived
// operator database saves in O(new data), and a crash mid-save never
// corrupts the previous snapshot. This is the path-based save every CLI
// should use instead of hand-rolled os.Create writes.
//
// SaveDB runs safely while other goroutines query or ingest: it
// persists the committed state at the moment it acquires the writer
// lock, and it never deletes a replaced segment file while any
// in-flight query's pinned view can still reach it (removal is
// deferred to the last reader draining).
func SaveDB(path string, db *DB) error { return db.SaveDir(path) }

// OpenDB loads a database saved by SaveDB (a v2 snapshot directory) or
// by WriteDBSnapshot (a single v1 snapshot file) — the format is
// detected from the path. Corrupt v2 directories fail with a typed
// *SnapshotError naming the offending file. Options tune the loaded
// store like NewDB's do; WithMapped additionally serves a directory
// snapshot's posting lists off read-only file mappings (page cache
// instead of heap — call db.Close() to release them), and WithShards
// re-shards a v1 single-file snapshot on load.
func OpenDB(path string, opts ...Option) (*DB, error) {
	o := applyOpts(opts)
	fi, err := os.Stat(path)
	if err != nil {
		return nil, &SnapshotError{Path: path, Err: err}
	}
	if fi.IsDir() {
		db, err := core.LoadDirOpts(path, core.LoadOptions{MapPostings: o.mapped})
		if err != nil {
			return nil, err
		}
		return configureDB(db, o)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, &SnapshotError{Path: path, Err: err}
	}
	defer f.Close()
	db, err := core.ReadSnapshot(f, o.shards)
	if err != nil {
		return nil, err
	}
	return configureDB(db, o)
}

// WriteDBSnapshot / ReadDBSnapshot persist a signature database in the
// single-file v1 binary snapshot format, so an operator's labeled DB
// survives restarts. shards == 0 reloads with the writer's shard
// layout; any other count re-shards without changing query results.
// Prefer SaveDB/OpenDB for on-disk stores: the v2 directory format adds
// incremental saves, atomic writes, and per-segment CRCs.
func WriteDBSnapshot(w io.Writer, db *DB) error { return db.WriteSnapshot(w) }

// ReadDBSnapshot parses a snapshot written by WriteDBSnapshot.
func ReadDBSnapshot(r io.Reader, shards int) (*DB, error) { return core.ReadSnapshot(r, shards) }

// CosineMetric is the cosine similarity of §2.1.
func CosineMetric() Metric { return core.CosineMetric() }

// EuclideanMetric is the paper's default L2-induced distance.
func EuclideanMetric() Metric { return core.EuclideanMetric() }

// MinkowskiMetric is the Lp-induced distance for p >= 1.
func MinkowskiMetric(p float64) Metric { return core.MinkowskiMetric(p) }

// WriteDocuments / ReadDocuments persist interval documents as JSON Lines.
func WriteDocuments(w io.Writer, docs []*Document) error { return core.WriteDocuments(w, docs) }

// ReadDocuments parses a JSON Lines document stream.
func ReadDocuments(r io.Reader) ([]*Document, error) { return core.ReadDocuments(r) }

// WriteSignatures / ReadSignatures persist embedded signatures.
func WriteSignatures(w io.Writer, sigs []Signature) error { return core.WriteSignatures(w, sigs) }

// ReadSignatures parses a JSON Lines signature stream.
func ReadSignatures(r io.Reader) ([]Signature, error) { return core.ReadSignatures(r) }

// WriteModel / ReadModel persist a fitted tf-idf model so later
// collections embed into the same vector space (§2.2's database
// workflow).
func WriteModel(w io.Writer, m *Model) error { return core.WriteModel(w, m) }

// ReadModel parses a model written by WriteModel.
func ReadModel(r io.Reader) (*Model, error) { return core.ReadModel(r) }

// WriteModelSnapshot / ReadModelSnapshot are the binary companions of
// WriteModel/ReadModel, pairing with the DB snapshot format.
func WriteModelSnapshot(w io.Writer, m *Model) error { return core.WriteModelSnapshot(w, m) }

// ReadModelSnapshot parses a model snapshot written by WriteModelSnapshot.
func ReadModelSnapshot(r io.Reader) (*Model, error) { return core.ReadModelSnapshot(r) }

// TermWeight is one kernel function's contribution to a signature.
type TermWeight = core.TermWeight

// TopTerms returns the k largest-magnitude components of a signature —
// the kernel functions that dominate the interval's behaviour. Pass
// System.FunctionNames() to resolve names.
func TopTerms(sig Signature, k int, names []string) ([]TermWeight, error) {
	return core.TopTerms(sig, k, names)
}

// Contrast returns the k kernel functions that most distinguish signature
// a from signature b (positive weight = stronger in a).
func Contrast(a, b Signature, k int, names []string) ([]TermWeight, error) {
	return core.Contrast(a, b, k, names)
}

// Learning helpers over labeled signatures.

// Classifier wraps a trained binary SVM together with its positive label.
type Classifier struct {
	model    *svm.Model
	PosLabel string
}

// TrainClassifier fits a soft-margin SVM (polynomial kernel, the paper's
// default) that separates signatures labeled posLabel (+1) from all
// others (-1).
func TrainClassifier(sigs []Signature, posLabel string, c float64, seed int64, opts ...Option) (*Classifier, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("fmeter: no signatures")
	}
	o := applyOpts(opts)
	x := make([]*Sparse, len(sigs))
	y := make([]float64, len(sigs))
	for i, s := range sigs {
		x[i] = s.W
		if s.Label == posLabel {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	m, err := svm.TrainSparse(x, y, svm.Config{C: c, Seed: seed, Workers: o.workers})
	if err != nil {
		return nil, err
	}
	return &Classifier{model: m, PosLabel: posLabel}, nil
}

// Matches reports whether the signature is classified as PosLabel, along
// with the decision score.
func (c *Classifier) Matches(sig Signature) (bool, float64) {
	score := c.model.DecisionSparse(sig.W)
	return score >= 0, score
}

// ScoreBatch returns the decision score of every signature in one
// batched pass, fanning the kernel-row computations out over the worker
// pool (WithWorkers). Scores are bit-identical to calling Matches per
// signature, at any worker count.
func (c *Classifier) ScoreBatch(sigs []Signature, opts ...Option) []float64 {
	o := applyOpts(opts)
	qs := make([]*Sparse, len(sigs))
	for i, s := range sigs {
		qs[i] = s.W
	}
	return c.model.DecisionBatch(qs, o.workers)
}

// ClusterResult is a K-means clustering of signatures.
type ClusterResult struct {
	// Assign maps signature index to cluster.
	Assign []int
	// Centroids are the cluster syndromes (§2.2).
	Centroids []Vector
	// Purity is the clustering purity against the signature labels.
	Purity float64
}

// ClusterSignatures K-means-clusters signatures into k groups and scores
// purity against their labels.
func ClusterSignatures(sigs []Signature, k int, seed int64, opts ...Option) (*ClusterResult, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("fmeter: no signatures")
	}
	o := applyOpts(opts)
	labels := make([]string, len(sigs))
	for i, s := range sigs {
		labels[i] = s.Label
	}
	kcfg := cluster.KMeansConfig{K: k, Seed: seed, Workers: o.workers}
	var res *cluster.KMeansResult
	var err error
	if o.sparse {
		qs := make([]*Sparse, len(sigs))
		for i, s := range sigs {
			qs[i] = s.W
		}
		res, err = cluster.KMeansSparse(qs, kcfg)
	} else {
		pts := make([]Vector, len(sigs))
		for i, s := range sigs {
			pts[i] = s.Dense()
		}
		res, err = cluster.KMeans(pts, kcfg)
	}
	if err != nil {
		return nil, err
	}
	purity, err := metrics.Purity(res.Assign, labels)
	if err != nil {
		return nil, err
	}
	return &ClusterResult{Assign: res.Assign, Centroids: res.Centroids, Purity: purity}, nil
}

// Dendrogram re-exports the hierarchical clustering tree.
type Dendrogram = cluster.Dendrogram

// HierarchicalCluster builds a single-linkage dendrogram over signatures
// (Figure 4).
func HierarchicalCluster(sigs []Signature) (*Dendrogram, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("fmeter: no signatures")
	}
	pts := make([]Vector, len(sigs))
	for i, s := range sigs {
		pts[i] = s.Dense()
	}
	return cluster.Hierarchical(pts, cluster.SingleLinkage)
}

// MetaClusterCentroids clusters cluster centroids (§2.2/§6's recursive
// clustering for, e.g., cache-aware co-scheduling).
func MetaClusterCentroids(centroids []Vector, k int, seed int64, opts ...Option) ([]int, error) {
	o := applyOpts(opts)
	res, err := cluster.MetaCluster(centroids, cluster.KMeansConfig{K: k, Seed: seed, Workers: o.workers, Sparse: o.sparse})
	if err != nil {
		return nil, err
	}
	return res.Assign, nil
}
