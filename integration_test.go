package fmeter

// Integration tests for the paper's operational workflow (§2.2): a
// labeled history database and a fitted tf-idf model are built on one
// machine, persisted, and later used to diagnose signatures collected on
// a *different* machine — which only works if the model, documents, and
// database all survive serialization and the embedding is reproducible.

import (
	"bytes"
	"testing"
	"time"
)

func TestDatabaseWorkflowAcrossMachines(t *testing.T) {
	// --- Machine A (the lab): build the labeled history. ---
	labSys, err := New(Config{Seed: 1001})
	if err != nil {
		t.Fatal(err)
	}
	var history []*Document
	for _, spec := range []WorkloadSpec{ScpWorkload(), KcompileWorkload(), DbenchWorkload()} {
		docs, err := labSys.Collect(spec, 10, 10*time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, docs...)
	}
	sigs, model, err := BuildSignatures(history, labSys.Dim())
	if err != nil {
		t.Fatal(err)
	}

	// Persist everything the operator would ship: model + signatures.
	var modelBuf, sigBuf bytes.Buffer
	if err := WriteModel(&modelBuf, model); err != nil {
		t.Fatal(err)
	}
	if err := WriteSignatures(&sigBuf, sigs); err != nil {
		t.Fatal(err)
	}

	// --- Machine B (production): collect unlabeled signatures. ---
	prodSys, err := New(Config{Seed: 2002})
	if err != nil {
		t.Fatal(err)
	}
	prodDocs, err := prodSys.Collect(DbenchWorkload(), 6, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	var docBuf bytes.Buffer
	if err := WriteDocuments(&docBuf, prodDocs); err != nil {
		t.Fatal(err)
	}

	// --- Analysis box: restore everything from bytes and diagnose. ---
	restoredModel, err := ReadModel(&modelBuf)
	if err != nil {
		t.Fatal(err)
	}
	restoredSigs, err := ReadSignatures(&sigBuf)
	if err != nil {
		t.Fatal(err)
	}
	restoredDocs, err := ReadDocuments(&docBuf)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(restoredModel.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(restoredSigs); err != nil {
		t.Fatal(err)
	}

	correct := 0
	for _, d := range restoredDocs {
		d.Label = "" // production labels are unknown
		sig, err := restoredModel.Transform(d)
		if err != nil {
			t.Fatal(err)
		}
		sig.W.Normalize()
		label, err := db.ClassifySparse(sig.W, 5, EuclideanMetric())
		if err != nil {
			t.Fatal(err)
		}
		if label == "dbench" {
			correct++
		}
	}
	if correct < len(restoredDocs)-1 {
		t.Errorf("diagnosed %d/%d production intervals as dbench", correct, len(restoredDocs))
	}
}

func TestModelTransformMatchesCorpusEmbedding(t *testing.T) {
	// Embedding a training document through the fitted model must equal
	// its corpus-time signature (before normalization differences): the
	// two paths share tf and idf by construction.
	sys, err := New(Config{Seed: 3003})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(ScpWorkload(), 5, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := NewCorpus(sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := corpus.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	sigs, model, err := corpus.Signatures()
	if err != nil {
		t.Fatal(err)
	}
	again, err := model.Transform(docs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !sigs[2].Dense().Equal(again.Dense(), 1e-12) {
		t.Error("model.Transform differs from corpus embedding")
	}
}

func TestSeededRunsAreBitReproducible(t *testing.T) {
	collect := func() []*Document {
		sys, err := New(Config{Seed: 4004})
		if err != nil {
			t.Fatal(err)
		}
		docs, err := sys.Collect(DbenchWorkload(), 4, 10*time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		return docs
	}
	a, b := collect(), collect()
	for i := range a {
		if len(a[i].Counts) != len(b[i].Counts) {
			t.Fatalf("interval %d support differs", i)
		}
		for fn, c := range a[i].Counts {
			if b[i].Counts[fn] != c {
				t.Fatalf("interval %d fn %d: %d vs %d", i, fn, c, b[i].Counts[fn])
			}
		}
	}
}
