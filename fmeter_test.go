package fmeter

import (
	"bytes"
	"testing"
	"time"
)

func TestNewDefaults(t *testing.T) {
	sys, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Tracer() != TracerFmeter {
		t.Errorf("default tracer = %v", sys.Tracer())
	}
	if sys.Dim() != 3815 {
		t.Errorf("Dim = %d, want 3815", sys.Dim())
	}
	if len(sys.FunctionNames()) != sys.Dim() {
		t.Error("FunctionNames length mismatch")
	}
	if _, err := New(Config{Tracer: Tracer(99)}); err == nil {
		t.Error("bad tracer should fail")
	}
}

func TestCollectAndBuildSignatures(t *testing.T) {
	sys, err := New(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	docs, err := sys.Collect(ScpWorkload(), 6, 10*time.Second, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 6 {
		t.Fatalf("docs = %d", len(docs))
	}
	back, err := ReadDocuments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 6 {
		t.Fatalf("logged docs = %d", len(back))
	}
	sigs, model, err := BuildSignatures(docs, sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 6 || model.Dim() != sys.Dim() {
		t.Fatal("signature pipeline lost data")
	}
	for _, s := range sigs {
		if s.Label != "scp" {
			t.Errorf("label = %q", s.Label)
		}
		l2 := s.W.L2()
		if l2 != 0 && (l2 < 0.999 || l2 > 1.001) {
			t.Errorf("signature not unit-ball scaled: %v", l2)
		}
	}
}

func TestCollectRequiresFmeterTracer(t *testing.T) {
	sys, err := New(Config{Tracer: TracerVanilla, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Collect(ScpWorkload(), 1, time.Second, nil); err == nil {
		t.Error("Collect under vanilla should fail")
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Error("Snapshot under vanilla should fail")
	}
}

func TestRunOpOverheadOrdering(t *testing.T) {
	elapsed := func(tr Tracer) time.Duration {
		sys, err := New(Config{Tracer: tr, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		d, err := sys.RunOp("simple_read", 5000)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	v, fm, ft := elapsed(TracerVanilla), elapsed(TracerFmeter), elapsed(TracerFtrace)
	if !(v < fm && fm < ft) {
		t.Errorf("overhead ordering broken: %v %v %v", v, fm, ft)
	}
}

func TestDriverLifecycleAndNetperf(t *testing.T) {
	sys, err := New(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadDriver(Driver151NoLRO); err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(NetperfWorkload(), 3, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[0].Total() == 0 {
		t.Error("netperf interval empty")
	}
	if err := sys.LoadDriver(Driver151); err == nil {
		t.Error("loading a second myri10ge should fail (name collision)")
	}
}

func TestClassifierEndToEnd(t *testing.T) {
	collect := func(spec WorkloadSpec, seed int64) []*Document {
		sys, err := New(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		docs, err := sys.Collect(spec, 12, 10*time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		return docs
	}
	docs := append(collect(ScpWorkload(), 10), collect(DbenchWorkload(), 20)...)
	sigs, _, err := BuildSignatures(docs, 3815)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainClassifier(sigs, "scp", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range sigs {
		match, _ := clf.Matches(s)
		if match == (s.Label == "scp") {
			correct++
		}
	}
	if correct < len(sigs)-1 {
		t.Errorf("classifier got %d/%d on training data", correct, len(sigs))
	}
	if _, err := TrainClassifier(nil, "x", 1, 1); err == nil {
		t.Error("empty training should fail")
	}
}

func TestClusteringEndToEnd(t *testing.T) {
	collect := func(spec WorkloadSpec, seed int64) []*Document {
		sys, err := New(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		docs, err := sys.Collect(spec, 10, 10*time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		return docs
	}
	docs := append(collect(ScpWorkload(), 30), collect(KcompileWorkload(), 40)...)
	sigs, _, err := BuildSignatures(docs, 3815)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterSignatures(sigs, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Purity < 0.8 {
		t.Errorf("purity = %v", res.Purity)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	meta, err := MetaClusterCentroids(res.Centroids, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta) != 2 || meta[0] == meta[1] {
		t.Errorf("meta clustering = %v", meta)
	}
	root, err := HierarchicalCluster(sigs)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Leaves()) != len(sigs) {
		t.Error("dendrogram lost leaves")
	}
	if _, err := ClusterSignatures(nil, 2, 1); err == nil {
		t.Error("empty clustering should fail")
	}
	if _, err := HierarchicalCluster(nil); err == nil {
		t.Error("empty hierarchical should fail")
	}
}

func TestSignatureDBSearch(t *testing.T) {
	sys, err := New(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(DbenchWorkload(), 8, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, _, err := BuildSignatures(docs, sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sigs[1:] {
		if err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, metric := range []Metric{CosineMetric(), EuclideanMetric(), MinkowskiMetric(1)} {
		hits, err := db.TopKSparse(sigs[0].W, 3, metric)
		if err != nil {
			t.Fatalf("%s: %v", metric.Name, err)
		}
		if len(hits) != 3 {
			t.Fatalf("%s: hits = %d", metric.Name, len(hits))
		}
		if hits[0].Signature.Label != "dbench" {
			t.Errorf("%s: nearest = %q", metric.Name, hits[0].Signature.Label)
		}
	}
}
